//! `udse-inspect` — summarize, diff, and trace-export run manifests.
//!
//! Usage:
//!
//! ```text
//! udse-inspect show <manifest>
//! udse-inspect diff <baseline> <new> [--tol-wall <pct>] [--tol-quality <abs>]
//!                                    [--tol-quality-pooled <abs>]
//!                                    [--tol-quality-max <abs>] [--warn-wall]
//!                                    [--tol-gauge <name>:<pct> ...]
//!                                    [--min-gauge <name>:<value> ...]
//!                                    [--tol-resource <name>:<pct>[:<floor>] ...]
//! udse-inspect merge <manifest>... [--tol <abs>] [-o <out>]
//! udse-inspect trace <manifest | events.jsonl | trace.json> [--folded]
//!                    [--per-worker] [-o <out>]
//! udse-inspect report <manifest> [--shard-dir <dir>]
//! ```
//!
//! `show` prints a human-readable summary (artifacts, model quality,
//! spans, metrics). `diff` compares a new run against a baseline and
//! exits nonzero when wall time or model quality regressed beyond
//! tolerance — the CI gate used by `scripts/ci.sh`. Quality budgets are
//! per-study: `--tol-quality` is the per-benchmark default,
//! `--tol-quality-pooled` the tighter budget for pooled records, and
//! `--tol-quality-max` the looser budget for worst-single-error (`max`)
//! statistics. `--tol-gauge name:pct` (repeatable) watches a gauge
//! metric and warns — never gates — when it falls more than `pct`
//! percent below the baseline (e.g.
//! `--tol-gauge sweep.designs_per_sec:50` catches prediction-throughput
//! collapses). `--min-gauge name:value` (repeatable) is the hard floor
//! variant: the run *fails* when the named gauge in the NEW manifest
//! falls below the absolute `value` (or is missing) — e.g.
//! `--min-gauge sweep.designs_per_sec:50000000` locks in a step-change
//! throughput win that a relative watch against a refreshed baseline
//! would let erode. `--tol-resource name:pct[:floor]` (repeatable) is its
//! gating mirror image for resource metrics: the run fails when the
//! named metric *rises* more than `pct` percent above the baseline and
//! the absolute rise exceeds `floor` (default 0) — e.g.
//! `--tol-resource sweep.allocs_per_design:100:0.05` keeps the compiled
//! sweep allocation-free; `resources.`-prefixed names read the manifest
//! `resources` section (`resources.alloc_bytes`, `resources.peak_rss_kb`,
//! …). `merge` aggregates the per-process manifests of one
//! `repro --shards` run (the parent's plus every worker's) into a single
//! document: minimum wall per artifact/span, work counters summed across
//! processes, quality records carried verbatim with shared keys required
//! to agree within `--tol` (default exact to 1e-9); the merged document
//! is an ordinary manifest, so `diff` can gate a sharded run against a
//! single-process baseline. `trace` emits Chrome `trace_event` JSON (open in Perfetto
//! or `chrome://tracing`) from a JSONL event stream recorded with
//! `UDSE_TRACE=1`, an existing Chrome trace array (e.g. the merged
//! multi-process trace `repro --shards --trace` writes), or synthesized
//! from a manifest's span totals; `trace <manifest> --folded` instead
//! emits folded stacks (`path;to;span self_us` lines) consumable by
//! `flamegraph.pl` and inferno, and `trace <input> --per-worker` prints
//! a per-pid-lane breakdown (event count, wall span, busiest span) of a
//! merged trace. `report` is the one-command run summary: the manifest
//! sections of `show` plus, with `--shard-dir`, everything the worker
//! telemetry sidecars add — per-shard wall/job-throughput skew,
//! heartbeat-gap straggler warnings, unclean worker exits, and dropped
//! trace events (silence threshold: `UDSE_STALL_SECS`, default 30).
//!
//! Exit codes: 0 success / within tolerance, 1 regression detected,
//! 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use udse_bench::inspect::{self, DiffTolerances};
use udse_obs::manifest::{write_with_parents, ParsedManifest};
use udse_obs::trace;

// Same counting allocator the `repro` binary installs: `udse-inspect`
// produces no manifests, but keeping every workspace binary under the
// counter means its cost stays continuously exercised end to end.
#[global_allocator]
static ALLOC: udse_obs::CountingAlloc = udse_obs::CountingAlloc::new();

const USAGE: &str = "usage: udse-inspect <command>\n\
  show  <manifest>                                 summarize one run\n\
  diff  <baseline> <new> [--tol-wall <pct>] [--tol-quality <abs>]\n\
        [--tol-quality-pooled <abs>] [--tol-quality-max <abs>] [--warn-wall]\n\
        [--tol-gauge <name>:<pct> ...] [--min-gauge <name>:<value> ...]\n\
        [--tol-resource <name>:<pct>[:<floor>] ...] gate a run against a baseline\n\
  merge <manifest>... [--tol <abs>] [-o <path>]    aggregate sharded-run manifests\n\
  trace <manifest | events.jsonl | trace.json> [--folded] [--per-worker] [-o <path>]\n\
                                                   export Chrome trace_event JSON,\n\
                                                   folded flamegraph stacks, or a\n\
                                                   per-pid-lane summary\n\
  report <manifest> [--shard-dir <dir>]            unified run report (spans, shard\n\
                                                   skew, stragglers, quality)";

fn fail(message: &str) -> ExitCode {
    eprintln!("udse-inspect: {message}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ParsedManifest, String> {
    ParsedManifest::read_from_path(Path::new(path))
}

fn main() -> ExitCode {
    udse_obs::log::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Flags that consume the next argument; everything else non-dashed
    // is positional.
    const VALUE_FLAGS: [&str; 10] = [
        "--tol-wall",
        "--tol-quality",
        "--tol-quality-pooled",
        "--tol-quality-max",
        "--tol-gauge",
        "--min-gauge",
        "--tol-resource",
        "--tol",
        "--shard-dir",
        "-o",
    ];
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with('-') {
            positional.push(a);
        }
    }
    if args.iter().any(|a| a == "--help" || a == "-h") || positional.is_empty() {
        eprintln!("{USAGE}");
        return if positional.is_empty() { ExitCode::from(2) } else { ExitCode::SUCCESS };
    }
    let flag_value = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
    };
    let parse_f64 = |flag: &str| -> Result<Option<f64>, String> {
        flag_value(flag)
            .map(|v| v.parse::<f64>().map_err(|_| format!("{flag} expects a number, got `{v}`")))
            .transpose()
    };

    match positional[0].as_str() {
        "show" => {
            let [_, path] = positional[..] else {
                return fail("show expects exactly one manifest path");
            };
            match load(path) {
                Ok(m) => {
                    print!("{}", inspect::show(&m));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => {
            let [_, old_path, new_path] = positional[..] else {
                return fail("diff expects exactly two manifest paths");
            };
            let mut tol = DiffTolerances {
                warn_wall: args.iter().any(|a| a == "--warn-wall"),
                ..DiffTolerances::default()
            };
            let overrides = [
                ("--tol-wall", &mut tol.wall_pct),
                ("--tol-quality", &mut tol.quality_abs),
                ("--tol-quality-pooled", &mut tol.quality_pooled_abs),
                ("--tol-quality-max", &mut tol.quality_max_abs),
            ];
            for (flag, slot) in overrides {
                match parse_f64(flag) {
                    Ok(Some(v)) => *slot = v,
                    Ok(None) => {}
                    Err(e) => return fail(&e),
                }
            }
            // Repeatable --tol-gauge name:pct occurrences.
            for (i, a) in args.iter().enumerate() {
                if a != "--tol-gauge" {
                    continue;
                }
                let Some(spec) = args.get(i + 1) else {
                    return fail("--tol-gauge expects <name>:<pct>");
                };
                let parsed = spec
                    .rsplit_once(':')
                    .and_then(|(name, pct)| Some((name, pct.parse::<f64>().ok()?)))
                    .filter(|(name, _)| !name.is_empty());
                match parsed {
                    Some((name, pct)) => tol.gauge_warn.push((name.to_string(), pct)),
                    None => {
                        return fail(&format!("--tol-gauge expects <name>:<pct>, got `{spec}`"))
                    }
                }
            }
            // Repeatable --min-gauge name:value occurrences.
            for (i, a) in args.iter().enumerate() {
                if a != "--min-gauge" {
                    continue;
                }
                let Some(spec) = args.get(i + 1) else {
                    return fail("--min-gauge expects <name>:<value>");
                };
                let parsed = spec
                    .rsplit_once(':')
                    .and_then(|(name, value)| Some((name, value.parse::<f64>().ok()?)))
                    .filter(|(name, _)| !name.is_empty());
                match parsed {
                    Some((name, value)) => tol.min_gauge.push((name.to_string(), value)),
                    None => {
                        return fail(&format!("--min-gauge expects <name>:<value>, got `{spec}`"))
                    }
                }
            }
            // Repeatable --tol-resource name:pct[:floor] occurrences
            // (metric names are dotted, never contain colons).
            for (i, a) in args.iter().enumerate() {
                if a != "--tol-resource" {
                    continue;
                }
                let Some(spec) = args.get(i + 1) else {
                    return fail("--tol-resource expects <name>:<pct>[:<floor>]");
                };
                let parsed = spec.split_once(':').and_then(|(name, rest)| {
                    let (pct, floor) = match rest.split_once(':') {
                        Some((p, f)) => (p.parse::<f64>().ok()?, f.parse::<f64>().ok()?),
                        None => (rest.parse::<f64>().ok()?, 0.0),
                    };
                    (!name.is_empty()).then(|| (name.to_string(), pct, floor))
                });
                match parsed {
                    Some(gate) => tol.resource_gate.push(gate),
                    None => {
                        return fail(&format!(
                            "--tol-resource expects <name>:<pct>[:<floor>], got `{spec}`"
                        ))
                    }
                }
            }
            let (old, new) = match (load(old_path), load(new_path)) {
                (Ok(o), Ok(n)) => (o, n),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let report = inspect::diff(&old, &new, &tol);
            print!("{}", report.render());
            if report.is_regression() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "merge" => {
            let paths = &positional[1..];
            if paths.is_empty() {
                return fail("merge expects at least one manifest path");
            }
            let tol = match parse_f64("--tol") {
                Ok(v) => v.unwrap_or(1e-9),
                Err(e) => return fail(&e),
            };
            let mut inputs: Vec<(String, ParsedManifest)> = Vec::with_capacity(paths.len());
            for p in paths {
                match load(p) {
                    Ok(m) => inputs.push((p.to_string(), m)),
                    Err(e) => return fail(&e),
                }
            }
            let doc = match inspect::merge(&inputs, tol) {
                Ok(doc) => doc,
                Err(e) => return fail(&e),
            };
            let text = doc.to_string_pretty();
            match flag_value("-o") {
                Some(out) => {
                    let out = PathBuf::from(out);
                    if let Err(e) = write_with_parents(&out, &text) {
                        return fail(&e.to_string());
                    }
                    eprintln!(
                        "udse-inspect: merged {} manifest(s) into {}",
                        inputs.len(),
                        out.display()
                    );
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let [_, input] = positional[..] else {
                return fail("trace expects exactly one input path");
            };
            if args.iter().any(|a| a == "--folded") {
                if input.ends_with(".jsonl") {
                    return fail("--folded reads manifest span totals, not a JSONL event stream");
                }
                let folded = match load(input) {
                    Ok(m) => inspect::folded_from_manifest(&m),
                    Err(e) => return fail(&e),
                };
                match flag_value("-o") {
                    Some(out) => {
                        let out = PathBuf::from(out);
                        if let Err(e) = write_with_parents(&out, &folded) {
                            return fail(&e.to_string());
                        }
                        eprintln!("udse-inspect: wrote {}", out.display());
                    }
                    None => print!("{folded}"),
                }
                return ExitCode::SUCCESS;
            }
            // Accept three input shapes: a JSONL event stream, an
            // already-assembled Chrome trace array (e.g. the merged
            // multi-process trace from `repro --shards --trace`), or a
            // manifest whose span totals we synthesize events from.
            let parsed = if input.ends_with(".jsonl") {
                let text = match std::fs::read_to_string(input.as_str()) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("reading events {input}: {e}")),
                };
                match trace::parse_jsonl(&text) {
                    Ok(events) => trace::ParsedChromeTrace { events, lanes: Vec::new() },
                    Err(e) => return fail(&format!("events {input}: {e}")),
                }
            } else {
                let text = match std::fs::read_to_string(input.as_str()) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("reading {input}: {e}")),
                };
                if text.trim_start().starts_with('[') {
                    match trace::parse_chrome_trace(&text) {
                        Ok(parsed) => parsed,
                        Err(e) => return fail(&format!("trace {input}: {e}")),
                    }
                } else {
                    match ParsedManifest::parse(&text) {
                        Ok(m) => trace::ParsedChromeTrace {
                            events: inspect::manifest_trace_events(&m),
                            lanes: Vec::new(),
                        },
                        Err(e) => return fail(&format!("{input}: {e}")),
                    }
                }
            };
            if args.iter().any(|a| a == "--per-worker") {
                let summary = inspect::per_worker_summary(&parsed);
                match flag_value("-o") {
                    Some(out) => {
                        let out = PathBuf::from(out);
                        if let Err(e) = write_with_parents(&out, &summary) {
                            return fail(&e.to_string());
                        }
                        eprintln!("udse-inspect: wrote {}", out.display());
                    }
                    None => print!("{summary}"),
                }
                return ExitCode::SUCCESS;
            }
            let doc = trace::chrome_trace_json_named(&parsed.events, &parsed.lanes);
            let text = doc.to_string_pretty();
            match flag_value("-o") {
                Some(out) => {
                    let out = PathBuf::from(out);
                    if let Err(e) = write_with_parents(&out, &text) {
                        return fail(&e.to_string());
                    }
                    eprintln!("udse-inspect: wrote {}", out.display());
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        "report" => {
            let [_, path] = positional[..] else {
                return fail("report expects exactly one manifest path");
            };
            let m = match load(path) {
                Ok(m) => m,
                Err(e) => return fail(&e),
            };
            let (sidecars, problems) = match flag_value("--shard-dir") {
                Some(dir) => udse_obs::sidecar::collect(Path::new(dir)),
                None => (Vec::new(), Vec::new()),
            };
            let stall_after = std::env::var("UDSE_STALL_SECS")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|s| *s > 0.0)
                .map(std::time::Duration::from_secs_f64)
                .unwrap_or(std::time::Duration::from_secs(30));
            print!("{}", inspect::report(&m, &sidecars, &problems, stall_after));
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command `{other}`\n{USAGE}")),
    }
}
