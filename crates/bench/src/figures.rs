//! Figures 1–4 and Table 2: validation and pareto frontier analysis.

use udse_core::report::{fmt, fmt_pct, format_table};
use udse_core::studies::pareto::{efficiency_optimum, Characterization, FrontierStudy};
use udse_core::studies::validation::ValidationStudy;
use udse_trace::Benchmark;

use crate::context::Context;

/// Picks one benchmark's characterization out of the fused sweep.
fn characterization(chs: &[Characterization], b: Benchmark) -> &Characterization {
    chs.iter().find(|c| c.benchmark == b).expect("fused sweep covers every benchmark")
}

/// Figure 1: error distributions (boxplot statistics) of performance and
/// power predictions for random validation designs.
pub fn fig1(ctx: &Context) -> String {
    let engine = ctx.engine();
    let study = ValidationStudy::run(ctx.oracle(), &engine, ctx.config());
    let mut rows = Vec::new();
    for bv in &study.per_benchmark {
        rows.push(vec![
            bv.benchmark.name().to_string(),
            fmt(bv.performance.median() * 100.0, 1),
            fmt(bv.performance.boxplot.q1 * 100.0, 1),
            fmt(bv.performance.boxplot.q3 * 100.0, 1),
            fmt(bv.power.median() * 100.0, 1),
            fmt(bv.power.boxplot.q1 * 100.0, 1),
            fmt(bv.power.boxplot.q3 * 100.0, 1),
        ]);
    }
    format!(
        "Figure 1: prediction error distributions over {} random validation designs\n\
         (percent |obs-pred|/pred; paper reports overall medians of 7.2% perf, 5.4% power)\n\n{}\n\
         overall median error: performance {:.1}%  power {:.1}%\n",
        ctx.config().validation_samples,
        format_table(
            &["bench", "perf_med%", "perf_q1%", "perf_q3%", "pow_med%", "pow_q1%", "pow_q3%"],
            &rows
        ),
        study.overall_performance_median * 100.0,
        study.overall_power_median * 100.0,
    )
}

/// Figure 2: design space characterization — per depth-width cluster
/// delay/power envelopes for every benchmark.
pub fn fig2(ctx: &Context) -> String {
    let chs = ctx.characterizations();
    let mut out = String::from(
        "Figure 2: regression-predicted delay/power envelopes per (depth, width) cluster\n\n",
    );
    for &b in &[Benchmark::Ammp, Benchmark::Mcf, Benchmark::Mesa, Benchmark::Jbb] {
        let ch = characterization(&chs, b);
        let rows: Vec<Vec<String>> = ch
            .clusters
            .iter()
            .map(|c| {
                vec![
                    c.fo4.to_string(),
                    c.width.to_string(),
                    fmt(c.delay_min, 2),
                    fmt(c.delay_max, 2),
                    fmt(c.power_min, 1),
                    fmt(c.power_max, 1),
                    c.count.to_string(),
                ]
            })
            .collect();
        out.push_str(&format!(
            "== {} ==\n{}\n",
            b.name(),
            format_table(
                &["fo4", "width", "delay_min", "delay_max", "pow_min", "pow_max", "designs"],
                &rows
            )
        ));
    }
    out
}

/// Figure 3: modeled vs simulated pareto frontiers for representative
/// benchmarks.
pub fn fig3(ctx: &Context) -> String {
    let mut out =
        String::from("Figure 3: pareto frontier — predicted vs simulated (delay s, power W)\n\n");
    let engine = ctx.engine();
    for &b in &[Benchmark::Ammp, Benchmark::Mcf, Benchmark::Mesa, Benchmark::Jbb] {
        let fs = FrontierStudy::run(ctx.oracle(), &engine, b, ctx.config());
        let rows: Vec<Vec<String>> = fs
            .designs
            .iter()
            .zip(fs.predicted.iter().zip(&fs.simulated))
            .map(|(d, (p, s))| {
                vec![
                    format!("{}/{}", d.fo4(), d.decode_width()),
                    fmt(p.delay_seconds(), 3),
                    fmt(s.delay_seconds(), 3),
                    fmt(p.watts, 1),
                    fmt(s.watts, 1),
                ]
            })
            .collect();
        out.push_str(&format!(
            "== {} ({} frontier designs) ==\n{}\n",
            b.name(),
            fs.designs.len(),
            format_table(&["depth/width", "delay_pred", "delay_sim", "pow_pred", "pow_sim"], &rows)
        ));
    }
    out
}

/// Figure 4: error distributions of frontier-point predictions.
pub fn fig4(ctx: &Context) -> String {
    let mut rows = Vec::new();
    let mut all_perf = Vec::new();
    let mut all_power = Vec::new();
    let engine = ctx.engine();
    for b in Benchmark::ALL {
        let fs = FrontierStudy::run(ctx.oracle(), &engine, b, ctx.config());
        let (perf, power) = fs.errors();
        all_perf.push(perf.median());
        all_power.push(power.median());
        rows.push(vec![
            b.name().to_string(),
            fmt(perf.median() * 100.0, 1),
            fmt(perf.p90 * 100.0, 1),
            fmt(power.median() * 100.0, 1),
            fmt(power.p90 * 100.0, 1),
        ]);
    }
    let med = |v: &[f64]| udse_stats::median(v) * 100.0;
    format!(
        "Figure 4: prediction error on pareto frontier designs\n\
         (paper: overall medians 8.7% perf / 5.5% power — consistent with Fig 1)\n\n{}\n\
         across-benchmark median of medians: performance {:.1}%  power {:.1}%\n",
        format_table(&["bench", "perf_med%", "perf_p90%", "pow_med%", "pow_p90%"], &rows),
        med(&all_perf),
        med(&all_power),
    )
}

/// Table 2: per-benchmark `bips³/w`-maximizing architectures with
/// prediction errors.
pub fn table2(ctx: &Context) -> String {
    let engine = ctx.engine();
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let opt = efficiency_optimum(ctx.oracle(), &engine, b, ctx.config());
        let p = opt.point;
        rows.push(vec![
            b.name().to_string(),
            p.fo4().to_string(),
            p.decode_width().to_string(),
            p.gpr().to_string(),
            p.resv_fp().to_string(),
            p.il1_kb().to_string(),
            p.dl1_kb().to_string(),
            fmt(p.l2_kb() as f64 / 1024.0, 2),
            fmt(opt.predicted.delay_seconds(), 2),
            fmt_pct(opt.delay_error()),
            fmt(opt.predicted.watts, 1),
            fmt_pct(opt.power_error()),
        ]);
    }
    format!(
        "Table 2: bips^3/w-maximizing per-benchmark architectures\n\
         (delay in seconds per 10^9 instructions; errors are (sim-pred)/pred)\n\n{}",
        format_table(
            &[
                "bench", "depth", "width", "reg", "resv", "I$KB", "D$KB", "L2MB", "delay", "d_err",
                "power", "p_err"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig1_mentions_all_benchmarks() {
        let ctx = Context::new(true);
        let s = fig1(&ctx);
        for b in Benchmark::ALL {
            assert!(s.contains(b.name()), "missing {b}");
        }
        assert!(s.contains("overall median"));
    }

    #[test]
    fn quick_table2_has_nine_rows() {
        let ctx = Context::new(true);
        let s = table2(&ctx);
        assert_eq!(s.lines().filter(|l| l.contains('%')).count(), 9);
    }
}
