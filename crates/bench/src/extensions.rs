//! The paper's §8 future-work directions, implemented as additional
//! artifacts: heuristic search with the models, cache-associativity
//! modeling with significance testing, and the simulator's bottleneck
//! (stall) attribution used to sanity-check the workload substitution.

use udse_core::model::paper_terms;
use udse_core::report::{fmt, format_table};
use udse_core::search::{
    genetic_search, random_restart_hill_climb, simulated_annealing, GeneticConfig,
};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_core::studies::strided_count;
use udse_core::Query;
use udse_regress::{residual_report, Dataset, ModelSpec, ResponseTransform, TermSpec};
use udse_sim::Simulator;
use udse_trace::Benchmark;

use crate::context::Context;

/// §8: "for larger design spaces, we may apply the models in heuristic
/// search instead of exhaustive prediction." Compares exhaustive
/// prediction against hill climbing (20 restarts) and simulated
/// annealing on the trained models' bips³/w surface.
pub fn search(ctx: &Context) -> String {
    let suite = ctx.suite();
    let engine = ctx.engine();
    let space = DesignSpace::exploration();
    let mut rows = Vec::new();
    // Exhaustive (strided in quick mode) reference: one unconstrained
    // optimum query answers all nine benchmarks from a single fused,
    // chunk-parallel walk (each entry's score is that benchmark's maximal
    // predicted bips^3/w over the strided space).
    let stride = ctx.config().eval_stride;
    let exhaustive_evals = strided_count(&space, stride);
    let optima = engine
        .execute(&Query::optimum(None, vec![], stride))
        .expect("unconstrained optima cannot fail");
    let entries = optima.optima().expect("optimum query yields optima").to_vec();
    for b in Benchmark::ALL {
        let models = suite.models(b);
        let objective = |p: &DesignPoint| models.predict_efficiency(p);
        let best_exhaustive = entries[b.id() as usize].score;
        let hc = random_restart_hill_climb(&space, 20, 7, objective);
        let sa = simulated_annealing(&space, 30_000, best_exhaustive.abs() * 0.2, 7, objective);
        let ga = genetic_search(&space, &GeneticConfig::default(), 7, objective);
        rows.push(vec![
            b.name().to_string(),
            fmt(100.0 * hc.best_value / best_exhaustive, 1),
            hc.evaluations.to_string(),
            fmt(100.0 * sa.best_value / best_exhaustive, 1),
            sa.evaluations.to_string(),
            fmt(100.0 * ga.best_value / best_exhaustive, 1),
            ga.evaluations.to_string(),
            exhaustive_evals.to_string(),
        ]);
    }
    format!(
        "Extension (paper <<8): heuristic search vs exhaustive prediction\n\
         (percent of the exhaustive optimum found, and objective evaluations spent)\n\n{}",
        format_table(
            &[
                "bench",
                "hillclimb%",
                "hc_evals",
                "anneal%",
                "sa_evals",
                "genetic%",
                "ga_evals",
                "exhaustive_evals"
            ],
            &rows
        )
    )
}

/// Bottleneck attribution: what limits each benchmark on the baseline
/// machine. Validates the workload substitution qualitatively (mcf
/// should be memory/LSQ-bound, gcc redirect-bound, ...).
pub fn stalls(ctx: &Context) -> String {
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let trace = ctx.sim_oracle().trace(b);
        let r = Simulator::new(udse_sim::MachineConfig::power4_baseline())
            .run_with_warmup(&trace, ctx.sim_oracle().warmup_insts());
        let s = r.stalls;
        let per_kinst = |v: u64| fmt(v as f64 / (r.instructions as f64 / 1000.0), 1);
        rows.push(vec![
            b.name().to_string(),
            per_kinst(s.redirect),
            per_kinst(s.icache),
            per_kinst(s.rob),
            per_kinst(s.registers),
            per_kinst(s.reservations),
            per_kinst(s.lsq),
            per_kinst(s.store_queue),
            s.dominant().to_string(),
        ]);
    }
    format!(
        "Diagnostics: delay attribution on the Table 3 baseline\n\
         (cycle-sums per 1,000 instructions; causes may overlap)\n\n{}",
        format_table(
            &["bench", "redirect", "icache", "rob", "registers", "resv", "lsq", "stq", "dominant"],
            &rows
        )
    )
}

/// §8: "we intend to expand our models to support other parameters such
/// as cache associativity." Samples designs with randomized D-L1
/// associativity, fits a model with associativity as an eighth
/// predictor, and reports the coefficient's significance alongside a
/// direct simulation sweep.
pub fn associativity(ctx: &Context) -> String {
    let oracle = ctx.sim_oracle();
    // Direct sweep at the baseline.
    let mut sweep_rows = Vec::new();
    for b in [Benchmark::Twolf, Benchmark::Gcc, Benchmark::Mcf] {
        let trace = oracle.trace(b);
        let mut row = vec![b.name().to_string()];
        for assoc in [1u32, 2, 4, 8] {
            let mut cfg = udse_sim::MachineConfig::power4_baseline();
            cfg.dl1_assoc = assoc;
            let r = Simulator::new(cfg).run_with_warmup(&trace, oracle.warmup_insts());
            row.push(fmt(r.dl1_miss_rate * 100.0, 2));
        }
        sweep_rows.push(row);
    }

    // Extended model: the seven Table 1 predictors plus log2(assoc).
    let n = ctx.config().train_samples.min(400);
    let space = DesignSpace::paper();
    let samples = space.sample_uar(n, ctx.config().seed ^ 0xA550C);
    let assoc_values = [1u32, 2, 4, 8];
    let mut names = DesignPoint::predictor_names();
    names.push("log2_dl1_assoc".to_string());
    let mut rows = Vec::with_capacity(n);
    let mut bips = Vec::with_capacity(n);
    let trace = oracle.trace(Benchmark::Twolf);
    for (i, p) in samples.iter().enumerate() {
        let assoc = assoc_values[i % assoc_values.len()];
        let mut cfg = p.to_machine_config();
        cfg.dl1_assoc = assoc;
        let r = Simulator::new(cfg).run_with_warmup(&trace, oracle.warmup_insts());
        let mut row = p.predictors();
        row.push((assoc as f64).log2());
        rows.push(row);
        bips.push(r.bips);
    }
    let data = Dataset::new(names, rows).expect("non-empty extended dataset");
    let mut terms = paper_terms();
    terms.push(TermSpec::Linear(7));
    let model = ModelSpec::new(ResponseTransform::Sqrt)
        .with_terms(terms)
        .fit(&data, &bips)
        .expect("extended model fits");
    let assoc_stat = model
        .coefficient_table()
        .into_iter()
        .find(|c| c.name == "log2_dl1_assoc")
        .expect("assoc coefficient present");

    format!(
        "Extension (paper <<8): cache associativity\n\n\
         D-L1 miss rate (%) vs associativity at the baseline:\n{}\n\
         Extended twolf performance model (+log2 D-L1 associativity, n={}):\n\
         R^2 = {:.3}; assoc coefficient = {:+.4} (t = {:+.2}, p = {:.3})\n\
         -> {}\n",
        format_table(&["bench", "1-way", "2-way", "4-way", "8-way"], &sweep_rows),
        n,
        model.r_squared(),
        assoc_stat.estimate,
        assoc_stat.t_value,
        assoc_stat.p_value,
        if assoc_stat.significant_at(0.05) {
            "associativity is a significant performance predictor at the 5% level"
        } else {
            "associativity is not significant at the 5% level (capacity dominates \
             conflict misses in this space)"
        }
    )
}

/// §8: "we intend to expand our models to support ... in-order
/// execution." Simulates every benchmark on the baseline with
/// out-of-order vs in-order issue.
pub fn inorder(ctx: &Context) -> String {
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let trace = ctx.sim_oracle().trace(b);
        let warm = ctx.sim_oracle().warmup_insts();
        let ooo_cfg = udse_sim::MachineConfig::power4_baseline();
        let mut ino_cfg = ooo_cfg;
        ino_cfg.in_order = true;
        let ooo = Simulator::new(ooo_cfg).run_with_warmup(&trace, warm);
        let ino = Simulator::new(ino_cfg).run_with_warmup(&trace, warm);
        rows.push(vec![
            b.name().to_string(),
            fmt(ooo.bips, 2),
            fmt(ino.bips, 2),
            fmt(ooo.bips / ino.bips, 2),
            fmt(ooo.bips_cubed_per_watt() / ino.bips_cubed_per_watt(), 2),
        ]);
    }
    format!(
        "Extension (paper <<8): in-order execution on the Table 3 baseline
         (out-of-order speedup and bips^3/w ratio per benchmark)

{}",
        format_table(&["bench", "ooo_bips", "ino_bips", "speedup", "eff_ratio"], &rows)
    )
}

/// Residual analysis (paper §3): shows that the sqrt/log response
/// transforms are what make the OLS assumptions hold — identity-response
/// fits leave skewed, heteroscedastic residuals.
pub fn residuals(ctx: &Context) -> String {
    use udse_core::oracle::Oracle as _;
    let oracle = ctx.oracle();
    let n = ctx.config().train_samples.min(400);
    let samples = DesignSpace::paper().sample_uar(n, ctx.config().seed ^ 0x4E5);
    let mut rows = Vec::new();
    for b in [Benchmark::Ammp, Benchmark::Mcf, Benchmark::Gzip] {
        let metrics: Vec<udse_core::oracle::Metrics> =
            samples.iter().map(|p| oracle.evaluate(b, p)).collect();
        let data = udse_core::model::design_dataset(&samples).expect("non-empty");
        let watts: Vec<f64> = metrics.iter().map(|m| m.watts).collect();
        for (name, transform) in
            [("identity", ResponseTransform::Identity), ("log(paper)", ResponseTransform::Log)]
        {
            let model = ModelSpec::new(transform)
                .with_terms(paper_terms())
                .fit(&data, &watts)
                .expect("power variant fits");
            let r = residual_report(&model, &data, &watts).expect("report");
            rows.push(vec![
                b.name().to_string(),
                name.to_string(),
                fmt(r.skewness, 2),
                fmt(r.excess_kurtosis, 2),
                fmt(r.jarque_bera_pvalue, 3),
                fmt(r.spread_trend, 2),
            ]);
        }
    }
    format!(
        "Diagnostics: power-model residual analysis (paper <<3)
         (JB p > 0.05 = residuals look normal; spread_trend ~ 0 = homoscedastic)

{}",
        format_table(&["bench", "response", "skew", "ex_kurt", "jb_p", "spread_trend"], &rows)
    )
}

/// Workload substitution diagnostics: measured trace statistics vs the
/// profile intent (cf. the paper's trace validation \[11]), plus the
/// simulated character of each benchmark on the baseline.
pub fn workloads(ctx: &Context) -> String {
    let oracle = ctx.sim_oracle();
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let report = udse_trace::characterize(b, oracle.trace_len(), 3);
        let deviations = report.check(0.12);
        let trace = oracle.trace(b);
        let r = Simulator::new(udse_sim::MachineConfig::power4_baseline())
            .run_with_warmup(&trace, oracle.warmup_insts());
        rows.push(vec![
            b.name().to_string(),
            fmt(report.stats.load_frac + report.stats.store_frac, 2),
            fmt(report.stats.branch_frac, 2),
            fmt(report.stats.mean_dep_dist, 1),
            fmt(report.data_coverage() * 100.0, 1),
            fmt(r.bips, 2),
            fmt(r.dl1_miss_rate * 100.0, 1),
            fmt(r.l2_miss_rate * 100.0, 1),
            fmt(r.mispredict_rate * 100.0, 1),
            deviations.len().to_string(),
        ]);
    }
    format!(
        "Diagnostics: synthetic workload characterization (baseline machine)
         (mem = load+store fraction; cover = % of data footprint touched;
          deviations = profile quantities off by >12%)

{}",
        format_table(
            &[
                "bench",
                "mem",
                "branch",
                "dep",
                "cover%",
                "bips",
                "dl1%",
                "l2%",
                "misp%",
                "deviations"
            ],
            &rows
        )
    )
}

/// Separate artifact: a fitted model's coefficient significance table
/// (the paper's §3 significance-testing step) for one benchmark.
pub fn significance(ctx: &Context) -> String {
    let suite = ctx.suite();
    let model = suite.models(Benchmark::Mcf).performance_model();
    let rows: Vec<Vec<String>> = model
        .coefficient_table()
        .into_iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:+.4}", c.estimate),
                fmt(c.std_error, 4),
                format!("{:+.2}", c.t_value),
                fmt(c.p_value, 4),
                if c.significant_at(0.01) {
                    "**"
                } else if c.significant_at(0.05) {
                    "*"
                } else {
                    ""
                }
                .to_string(),
            ]
        })
        .collect();
    format!(
        "Diagnostics: mcf performance model coefficient inference (sqrt scale)\n\
         (the paper's significance-testing step; * p<0.05, ** p<0.01)\n\n{}",
        format_table(&["term", "estimate", "std_err", "t", "p", "sig"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_artifact_runs_quick() {
        let ctx = Context::new(true);
        let s = search(&ctx);
        assert!(s.contains("hillclimb%"));
        for b in Benchmark::ALL {
            assert!(s.contains(b.name()));
        }
    }

    #[test]
    fn stalls_artifact_names_dominants() {
        let ctx = Context::new(true);
        let s = stalls(&ctx);
        assert!(s.contains("dominant"));
        assert!(!s.contains("panicked"));
    }

    #[test]
    fn inorder_artifact_shows_speedups() {
        let ctx = Context::new(true);
        let s = inorder(&ctx);
        assert!(s.contains("speedup"));
        assert!(s.contains("mcf"));
    }

    #[test]
    fn residuals_artifact_contrasts_transforms() {
        let ctx = Context::new(true);
        let s = residuals(&ctx);
        assert!(s.contains("identity"));
        assert!(s.contains("log(paper)"));
    }

    #[test]
    fn workloads_artifact_reports_no_deviations() {
        let ctx = Context::new(true);
        let s = workloads(&ctx);
        // Every row's deviation count (last column) should be zero.
        for line in s
            .lines()
            .filter(|l| Benchmark::ALL.iter().any(|b| l.trim_start().starts_with(b.name())))
        {
            let last = line.split_whitespace().last().unwrap();
            assert_eq!(last, "0", "unexpected deviations in: {line}");
        }
    }

    #[test]
    fn significance_artifact_lists_terms() {
        let ctx = Context::new(true);
        let s = significance(&ctx);
        assert!(s.contains("depth_fo4"));
        assert!(s.contains("intercept"));
    }
}
