//! Manifest inspection: summaries, cross-run regression diffs, and
//! Chrome-trace export — the analysis layer over `udse-obs` manifests.
//!
//! [`show`] renders one manifest for humans; [`diff`] compares two runs
//! (wall time, metrics, model quality) against configurable tolerances
//! and reports regressions — the CI gate behind `scripts/bench.sh`;
//! [`merge`] aggregates the per-process manifests of one sharded run
//! into a single document `diff` can gate; [`trace_from_manifest`] turns
//! a manifest's span totals into a Perfetto-loadable Chrome
//! `trace_event` document; [`report`] combines a manifest with the
//! telemetry sidecars of a sharded run into one "what did this run do
//! and where did the time go" summary, including per-shard throughput
//! skew and straggler warnings; [`per_worker_summary`] breaks a merged
//! multi-process trace down by pid lane.

use std::path::PathBuf;
use std::time::Duration;

use udse_obs::manifest::ParsedManifest;
use udse_obs::sidecar::SidecarDoc;
use udse_obs::{trace, Json};

/// Thresholds for [`diff`]. Wall time and model quality gate hard;
/// counter drift only warns (legitimate code changes move instruction
/// counts, and the warning is the point).
#[derive(Debug, Clone)]
pub struct DiffTolerances {
    /// Allowed relative wall-time growth per artifact and in total, in
    /// percent.
    pub wall_pct: f64,
    /// Absolute wall-time slack in seconds, so microsecond-scale
    /// artifacts don't trip the relative gate on scheduler noise.
    pub wall_floor_seconds: f64,
    /// Allowed absolute increase in a per-benchmark quality error
    /// statistic (p50/p90/|bias| are fractions, so 0.02 = two error
    /// points). This is the default budget; pooled and max statistics
    /// have their own budgets below.
    pub quality_abs: f64,
    /// Budget for *pooled* records (key contains `.pooled.`): pooled
    /// medians average over 9 x N errors and are far less noisy than any
    /// single benchmark, so they get a tighter budget.
    pub quality_pooled_abs: f64,
    /// Budget for the `max` statistic of any record: the worst single
    /// error is the noisiest order statistic, so it gets a looser budget.
    pub quality_max_abs: f64,
    /// Counter drift (percent) beyond which a warning is emitted.
    pub counter_warn_pct: f64,
    /// Gauge watchlist: `(metric name, percent)` pairs. A watched gauge
    /// that *falls* more than `percent` below the baseline emits a
    /// warning (never a gate — gauges are timing-dependent). Used for
    /// throughput gauges like `sweep.designs_per_sec`, where only a drop
    /// is suspicious.
    pub gauge_warn: Vec<(String, f64)>,
    /// Gauge floors: `(metric name, minimum value)` pairs. Unlike the
    /// relative `gauge_warn` watchlist, a floored gauge **gates**: if the
    /// NEW run's gauge falls below the absolute floor (or is missing
    /// entirely), the diff fails. This is how a step-change throughput
    /// win is locked in — e.g. `sweep.designs_per_sec:<floor>` keeps the
    /// structure-of-arrays sweep from silently regressing toward the
    /// pre-SoA rate, where a percentage watch against a fresh baseline
    /// would drift along with it.
    pub min_gauge: Vec<(String, f64)>,
    /// Resource gates: `(metric name, percent, absolute floor)`
    /// triples. The mirror image of `gauge_warn` — a watched resource
    /// metric that *rises* above the baseline **gates** (allocation
    /// counts are deterministic, so a rise is a real regression, and
    /// "the compiled sweep allocates nothing per design" is exactly the
    /// kind of claim this enforces). The rise must exceed both the
    /// relative `percent` and the `floor` (in the metric's own units)
    /// to gate, so per-chunk setup noise on a near-zero baseline never
    /// trips it. Names resolve against the metrics section, or against
    /// the v3 `resources` section with a `resources.` prefix (e.g.
    /// `resources.alloc_bytes`).
    pub resource_gate: Vec<(String, f64, f64)>,
    /// Demote wall-time regressions to warnings (CI runs on shared,
    /// differently-sized machines; quality stays gated).
    pub warn_wall: bool,
}

impl Default for DiffTolerances {
    fn default() -> Self {
        DiffTolerances {
            wall_pct: 25.0,
            wall_floor_seconds: 0.05,
            quality_abs: 0.02,
            quality_pooled_abs: 0.01,
            quality_max_abs: 0.05,
            counter_warn_pct: 10.0,
            gauge_warn: Vec::new(),
            min_gauge: Vec::new(),
            resource_gate: Vec::new(),
            warn_wall: false,
        }
    }
}

impl DiffTolerances {
    /// The budget for one `(record key, statistic)` pair: `max` always
    /// uses the loose per-record budget, pooled records use the tight
    /// pooled budget for their center statistics, everything else uses
    /// the per-benchmark default.
    pub fn quality_budget(&self, key: &str, stat: &str) -> f64 {
        if stat == "max" {
            self.quality_max_abs
        } else if key.contains(".pooled.") {
            self.quality_pooled_abs
        } else {
            self.quality_abs
        }
    }
}

/// Outcome of a [`diff`]: informational lines, warnings, and gating
/// regressions.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Per-comparison detail lines, for display.
    pub lines: Vec<String>,
    /// Suspicious but non-gating observations.
    pub warnings: Vec<String>,
    /// Tolerance violations; any entry means the gate fails.
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// Whether the diff found a gating regression.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// The full human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!("REGRESSION: {r}\n"));
        }
        if self.regressions.is_empty() {
            out.push_str("diff: within tolerances\n");
        } else {
            out.push_str(&format!("diff: {} regression(s)\n", self.regressions.len()));
        }
        out
    }
}

/// Compares run `new` against baseline `old`.
pub fn diff(old: &ParsedManifest, new: &ParsedManifest, tol: &DiffTolerances) -> DiffReport {
    let mut report = DiffReport::default();
    diff_wall(old, new, tol, &mut report);
    diff_quality(old, new, tol, &mut report);
    diff_counters(old, new, tol, &mut report);
    diff_gauges(old, new, tol, &mut report);
    diff_min_gauges(new, tol, &mut report);
    diff_resources(old, new, tol, &mut report);
    report
}

fn gate_wall(tol: &DiffTolerances, report: &mut DiffReport, message: String) {
    if tol.warn_wall {
        report.warnings.push(message);
    } else {
        report.regressions.push(message);
    }
}

fn diff_wall(
    old: &ParsedManifest,
    new: &ParsedManifest,
    tol: &DiffTolerances,
    report: &mut DiffReport,
) {
    let factor = 1.0 + tol.wall_pct / 100.0;
    for a in &old.artifacts {
        let Some(b) = new.artifact_wall_seconds(&a.name) else {
            report.warnings.push(format!("artifact `{}` missing from new run", a.name));
            continue;
        };
        report.lines.push(format!(
            "wall {:<12} {:>9.3}s -> {:>9.3}s ({:+.1}%)",
            a.name,
            a.wall_seconds,
            b,
            pct_change(a.wall_seconds, b)
        ));
        if b > a.wall_seconds * factor && b - a.wall_seconds > tol.wall_floor_seconds {
            gate_wall(
                tol,
                report,
                format!(
                    "artifact `{}` wall time {:.3}s -> {:.3}s exceeds +{}% tolerance",
                    a.name, a.wall_seconds, b, tol.wall_pct
                ),
            );
        }
    }
    for b in &new.artifacts {
        if old.artifact_wall_seconds(&b.name).is_none() {
            report.warnings.push(format!("artifact `{}` only in new run", b.name));
        }
    }
    let (old_total, new_total) = (old.total_wall_seconds(), new.total_wall_seconds());
    report.lines.push(format!(
        "wall {:<12} {:>9.3}s -> {:>9.3}s ({:+.1}%)",
        "TOTAL",
        old_total,
        new_total,
        pct_change(old_total, new_total)
    ));
    if new_total > old_total * factor && new_total - old_total > tol.wall_floor_seconds {
        gate_wall(
            tol,
            report,
            format!(
                "total wall time {old_total:.3}s -> {new_total:.3}s exceeds +{}% tolerance",
                tol.wall_pct
            ),
        );
    }
}

fn diff_quality(
    old: &ParsedManifest,
    new: &ParsedManifest,
    tol: &DiffTolerances,
    report: &mut DiffReport,
) {
    for o in &old.quality {
        let Some(n) = new.quality_record(&o.key) else {
            report.regressions.push(format!(
                "quality record `{}` disappeared (telemetry lost or stage skipped)",
                o.key
            ));
            continue;
        };
        report.lines.push(format!(
            "quality {:<28} p50 {:>6.2}% -> {:>6.2}%  p90 {:>6.2}% -> {:>6.2}%",
            o.key,
            o.p50 * 100.0,
            n.p50 * 100.0,
            o.p90 * 100.0,
            n.p90 * 100.0
        ));
        for (stat, old_v, new_v) in [
            ("p50", o.p50, n.p50),
            ("p90", o.p90, n.p90),
            ("bias", o.bias.abs(), n.bias.abs()),
            ("max", o.max, n.max),
        ] {
            let budget = tol.quality_budget(&o.key, stat);
            if new_v - old_v > budget {
                report.regressions.push(format!(
                    "quality `{}` {stat} worsened {:.4} -> {:.4} (tolerance +{:.4})",
                    o.key, old_v, new_v, budget
                ));
            }
        }
        if o.r_squared.is_finite() && n.r_squared.is_finite() && o.r_squared - n.r_squared > 0.05 {
            report.warnings.push(format!(
                "quality `{}` R² fell {:.4} -> {:.4}",
                o.key, o.r_squared, n.r_squared
            ));
        }
    }
    for n in &new.quality {
        if old.quality_record(&n.key).is_none() {
            report.lines.push(format!("quality {:<28} new record (no baseline)", n.key));
        }
    }
}

fn diff_counters(
    old: &ParsedManifest,
    new: &ParsedManifest,
    tol: &DiffTolerances,
    report: &mut DiffReport,
) {
    for (name, old_v) in &old.metrics {
        let (Some(o), Some(n)) = (old_v.as_i64(), new.metric(name).and_then(Json::as_i64)) else {
            continue; // gauges/histograms: timing-dependent, not diffed
        };
        if o == n {
            continue;
        }
        let change = pct_change(o as f64, n as f64);
        report.lines.push(format!("counter {name} {o} -> {n} ({change:+.1}%)"));
        if change.abs() > tol.counter_warn_pct {
            report.warnings.push(format!(
                "counter `{name}` moved {change:+.1}% (> {}%): workload shape changed",
                tol.counter_warn_pct
            ));
        }
    }
}

fn diff_gauges(
    old: &ParsedManifest,
    new: &ParsedManifest,
    tol: &DiffTolerances,
    report: &mut DiffReport,
) {
    for (name, pct) in &tol.gauge_warn {
        let (Some(o), Some(n)) =
            (old.metric(name).and_then(Json::as_f64), new.metric(name).and_then(Json::as_f64))
        else {
            report
                .warnings
                .push(format!("gauge `{name}` on the watchlist but missing from a manifest"));
            continue;
        };
        report.lines.push(format!("gauge {name} {o:.1} -> {n:.1} ({:+.1}%)", pct_change(o, n)));
        if n < o * (1.0 - pct / 100.0) {
            report.warnings.push(format!(
                "gauge `{name}` fell {o:.1} -> {n:.1} (more than {pct}% below baseline)"
            ));
        }
    }
}

/// Hard absolute floors on the NEW run's gauges. Only the new manifest is
/// consulted: the floor is a fixed contract, not a comparison, so a
/// refreshed baseline can never relax it by accident. A floored gauge
/// missing from the new run also gates — losing the telemetry would
/// otherwise disable the gate silently.
fn diff_min_gauges(new: &ParsedManifest, tol: &DiffTolerances, report: &mut DiffReport) {
    for (name, floor) in &tol.min_gauge {
        let Some(n) = new.metric(name).and_then(Json::as_f64) else {
            report
                .regressions
                .push(format!("gauge `{name}` has floor {floor} but is missing from the new run"));
            continue;
        };
        report.lines.push(format!("gauge {name} {n:.1} (floor {floor:.1})"));
        if n < *floor {
            report
                .regressions
                .push(format!("gauge `{name}` {n:.1} fell below the hard floor {floor:.1}"));
        }
    }
}

/// Resolves a resource-gate name: `resources.<field>` reads the v3
/// `resources` section, anything else reads the metrics section
/// (counters and gauges both answer `as_f64`).
fn resource_value(m: &ParsedManifest, name: &str) -> Option<f64> {
    if let Some(field) = name.strip_prefix("resources.") {
        let r = m.resources?;
        return match field {
            "allocs" => Some(r.allocs as f64),
            "deallocs" => Some(r.deallocs as f64),
            "alloc_bytes" => Some(r.alloc_bytes as f64),
            "peak_bytes" => Some(r.peak_bytes as f64),
            "peak_rss_kb" => r.peak_rss_kb.map(|v| v as f64),
            "cpu_seconds" => r.cpu_seconds,
            _ => None,
        };
    }
    m.metric(name).and_then(Json::as_f64)
}

fn diff_resources(
    old: &ParsedManifest,
    new: &ParsedManifest,
    tol: &DiffTolerances,
    report: &mut DiffReport,
) {
    for (name, pct, floor) in &tol.resource_gate {
        let (Some(o), Some(n)) = (resource_value(old, name), resource_value(new, name)) else {
            report
                .warnings
                .push(format!("resource `{name}` on the watchlist but missing from a manifest"));
            continue;
        };
        report.lines.push(format!("resource {name} {o:.3} -> {n:.3} ({:+.1}%)", pct_change(o, n)));
        if n > o * (1.0 + pct / 100.0) && n - o > *floor {
            report.regressions.push(format!(
                "resource `{name}` rose {o:.3} -> {n:.3} (more than +{pct}% over baseline, \
                 floor {floor})"
            ));
        }
    }
}

fn pct_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old * 100.0
    }
}

/// Merges the per-process manifests of one sharded run (parent plus
/// `repro worker` children, each labeled with its source path) into a
/// single aggregate document: minimum wall time per artifact and span
/// (concurrent processes overlap, so the minimum is the honest
/// serial-equivalent), work counters summed across processes (shards
/// partition the work), and quality records carried verbatim — shared
/// keys must agree within `quality_tol` or the merge refuses. The result
/// parses back as an ordinary manifest, so `diff` can gate a sharded run
/// against a single-process baseline. Delegates to
/// [`udse_obs::manifest::merge_manifests`].
///
/// # Errors
///
/// Fails on an empty input list or a quality disagreement, naming the
/// offending record, statistic, and input label.
pub fn merge(inputs: &[(String, ParsedManifest)], quality_tol: f64) -> Result<Json, String> {
    udse_obs::manifest::merge_manifests(inputs, quality_tol)
}

/// Renders one manifest as a human-readable summary.
pub fn show(m: &ParsedManifest) -> String {
    let mut out = format!(
        "tool: {}  (manifest schema v{}, created unix ms {})\n",
        m.tool, m.schema_version, m.created_unix_ms
    );
    if !m.config.is_empty() {
        out.push_str("config:\n");
        for (k, v) in &m.config {
            out.push_str(&format!("  {k} = {}\n", v.to_string_compact()));
        }
    }
    if !m.artifacts.is_empty() {
        out.push_str("\nartifacts:\n");
        for a in &m.artifacts {
            out.push_str(&format!("  {:<14} {:>10.3}s\n", a.name, a.wall_seconds));
        }
        out.push_str(&format!("  {:<14} {:>10.3}s\n", "TOTAL", m.total_wall_seconds()));
    }
    if !m.quality.is_empty() {
        out.push_str(&format!(
            "\nmodel quality (relative error):\n  {:<28} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "key", "n", "p50%", "p90%", "max%", "bias%", "R2"
        ));
        for q in &m.quality {
            out.push_str(&format!(
                "  {:<28} {:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8}\n",
                q.key,
                q.n,
                q.p50 * 100.0,
                q.p90 * 100.0,
                q.max * 100.0,
                q.bias * 100.0,
                if q.r_squared.is_finite() { format!("{:.4}", q.r_squared) } else { "-".into() },
            ));
        }
    }
    if !m.spans.is_empty() {
        // Resource columns render only when some span measured something:
        // an all-zero column would read as "allocation-free" when the
        // producing binary simply had no counting allocator installed.
        let with_resources =
            m.spans.iter().any(|(_, s)| s.cpu_seconds > 0.0 || s.allocs > 0 || s.alloc_bytes > 0);
        out.push_str("\nspans (total seconds):\n");
        for (path, s) in &m.spans {
            out.push_str(&format!(
                "  {:<36} {:>6} calls {:>10.3}s",
                path, s.count, s.total_seconds
            ));
            if with_resources {
                out.push_str(&format!(
                    " {:>9.3}s cpu {:>10} allocs {:>10}",
                    s.cpu_seconds,
                    s.allocs,
                    udse_obs::span::fmt_bytes(s.alloc_bytes)
                ));
            }
            out.push('\n');
        }
    }
    if let Some(r) = m.resources {
        out.push_str("\nresources:\n");
        if let Some(cpu) = r.cpu_seconds {
            out.push_str(&format!("  cpu time: {cpu:.3}s\n"));
        }
        if let Some(rss) = r.peak_rss_kb {
            out.push_str(&format!("  peak rss: {:.1} MB\n", rss as f64 / 1024.0));
        }
        if r.alloc_counting {
            out.push_str(&format!(
                "  heap: {} allocs / {} frees, {} allocated, peak live {}\n",
                r.allocs,
                r.deallocs,
                udse_obs::span::fmt_bytes(r.alloc_bytes),
                udse_obs::span::fmt_bytes(r.peak_bytes)
            ));
        } else {
            out.push_str("  heap: not measured (producing binary had no counting allocator)\n");
        }
    }
    // Query-engine counters get their own digest, but only when the run
    // actually executed queries — most manifests carry none, and an
    // all-zero section would suggest a broken cache rather than an
    // unused one.
    let qmetric = |name: &str| m.metric(name).and_then(Json::as_f64);
    if let Some(executed) = qmetric("query.executed") {
        out.push_str(&format!("\nquery engine:\n  executed: {executed:.0}\n"));
        let hits = qmetric("query.cache.hits").unwrap_or(0.0);
        let misses = qmetric("query.cache.misses").unwrap_or(0.0);
        let lookups = (hits + misses).max(1.0);
        out.push_str(&format!(
            "  result cache: {hits:.0} hits / {misses:.0} misses ({:.0}% hit rate), {} held",
            100.0 * hits / lookups,
            udse_obs::span::fmt_bytes(qmetric("query.cache.bytes").unwrap_or(0.0) as u64),
        ));
        if let Some(evicted) = qmetric("query.cache.evictions") {
            out.push_str(&format!(", {evicted:.0} evicted"));
        }
        out.push('\n');
        if let Some(rate) = qmetric("query.designs_per_sec") {
            out.push_str(&format!("  scan throughput: {rate:.0} designs/sec\n"));
        }
    }
    if !m.metrics.is_empty() {
        out.push_str("\nmetrics:\n");
        for (name, v) in &m.metrics {
            out.push_str(&format!("  {name} = {}\n", v.to_string_compact()));
        }
    }
    out
}

/// Per-shard aggregate of one run's telemetry sidecars: the skew table
/// rows of [`report`].
#[derive(Debug, Default, Clone, Copy)]
struct ShardAggregate {
    batches: u64,
    jobs: u64,
    busy_us: u64,
    max_rss_kb: u64,
    dropped_events: u64,
    unclean_exits: u64,
    // Resource totals from worker summaries. The `*_known` flags keep
    // "measured zero" distinct from "worker didn't measure" (old
    // sidecars, dirty exits): unknown renders as `-`, never as 0.
    cpu_us: u64,
    cpu_known: bool,
    allocs: u64,
    alloc_bytes: u64,
    alloc_known: bool,
    precompute_hits: u64,
    precompute_misses: u64,
    precompute_known: bool,
}

/// The unified run report: the manifest summary ([`show`]) followed by
/// what the telemetry sidecars add — a per-shard wall/job-throughput
/// skew table (aggregated over every batch a shard served), straggler
/// warnings (heartbeat gaps longer than `stall_after`, workers that
/// never wrote a summary), and a trace-drop note. `sidecars` comes from
/// [`udse_obs::sidecar::collect`]; pass its problem list through too so
/// corrupt files are reported rather than silently ignored.
pub fn report(
    m: &ParsedManifest,
    sidecars: &[(PathBuf, SidecarDoc)],
    problems: &[String],
    stall_after: Duration,
) -> String {
    let mut out = show(m);
    if sidecars.is_empty() && problems.is_empty() {
        out.push_str("\nno telemetry sidecars (single-process run, or pass --shard-dir)\n");
        return out;
    }
    let mut warnings: Vec<String> = problems.to_vec();
    // Aggregate per shard index: one worker process per batch serves
    // each shard, so a shard's row sums over all its batches.
    let mut shards: Vec<(u64, ShardAggregate)> = Vec::new();
    let stall_us = stall_after.as_micros() as u64;
    for (path, doc) in sidecars {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("sidecar");
        let Some(meta) = &doc.meta else {
            warnings.push(format!("{name}: no meta record (worker died at startup?)"));
            continue;
        };
        let slot = match shards.iter_mut().find(|(i, _)| *i == meta.shard_index) {
            Some((_, agg)) => agg,
            None => {
                shards.push((meta.shard_index, ShardAggregate::default()));
                &mut shards.last_mut().expect("just pushed").1
            }
        };
        slot.batches += 1;
        match &doc.summary {
            Some(s) => {
                slot.jobs += s.done;
                slot.busy_us += s.wall_us;
                slot.dropped_events += s.dropped_events;
                if let Some(v) = s.cpu_us {
                    slot.cpu_us += v;
                    slot.cpu_known = true;
                }
                if let Some(v) = s.allocs {
                    slot.allocs += v;
                    slot.alloc_bytes += s.alloc_bytes.unwrap_or(0);
                    slot.alloc_known = true;
                }
                slot.max_rss_kb = slot.max_rss_kb.max(s.peak_rss_kb.unwrap_or(0));
                if let (Some(h), Some(miss)) = (s.precompute_hits, s.precompute_misses) {
                    slot.precompute_hits += h;
                    slot.precompute_misses += miss;
                    slot.precompute_known = true;
                }
            }
            None => {
                slot.unclean_exits += 1;
                // Last heartbeat is the best surviving estimate.
                if let Some(h) = doc.heartbeats.last() {
                    slot.jobs += h.done;
                    slot.busy_us += h.t_us;
                }
                let at = doc
                    .heartbeats
                    .last()
                    .and_then(|h| h.last_job)
                    .map_or(String::new(), |j| format!(" (last job {j})"));
                warnings.push(format!("{name}: worker did not exit cleanly{at}"));
            }
        }
        slot.max_rss_kb =
            slot.max_rss_kb.max(doc.heartbeats.iter().filter_map(|h| h.rss_kb).max().unwrap_or(0));
        // Straggler heuristic: a silence longer than the stall
        // threshold between consecutive heartbeats (or before the
        // first) is exactly what the live monitor would have flagged.
        let mut prev = 0u64;
        for h in &doc.heartbeats {
            if h.t_us.saturating_sub(prev) > stall_us {
                warnings.push(format!(
                    "{name}: {:.1}s heartbeat gap at +{:.1}s ({}/{} jobs done)",
                    (h.t_us - prev) as f64 / 1e6,
                    h.t_us as f64 / 1e6,
                    h.done,
                    h.total
                ));
            }
            prev = h.t_us;
        }
    }
    shards.sort_by_key(|(i, _)| *i);
    if !shards.is_empty() {
        let best = shards
            .iter()
            .map(|(_, a)| throughput(a.jobs, a.busy_us))
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        out.push_str(&format!(
            "\nshard telemetry ({} sidecar(s)):\n  {:<5} {:>7} {:>8} {:>10} {:>8} {:>10} {:>9} \
             {:>8} {:>12} {:>10} {:>10} {:>8}\n",
            sidecars.len(),
            "shard",
            "batches",
            "jobs",
            "busy(s)",
            "jobs/s",
            "vs-best",
            "rss(MB)",
            "cpu(s)",
            "allocs",
            "alloc(MB)",
            "memo-hit",
            "resolve"
        ));
        for (index, agg) in &shards {
            let rate = throughput(agg.jobs, agg.busy_us);
            let cpu =
                if agg.cpu_known { format!("{:.3}", agg.cpu_us as f64 / 1e6) } else { "-".into() };
            let (allocs, alloc_mb) = if agg.alloc_known {
                (
                    agg.allocs.to_string(),
                    format!("{:.1}", agg.alloc_bytes as f64 / (1 << 20) as f64),
                )
            } else {
                ("-".into(), "-".into())
            };
            // Memoized-stream effectiveness: hit share of the shard's
            // stream lookups, and how many streams it resolved itself.
            let (memo_hit, resolves) = if agg.precompute_known {
                let lookups = (agg.precompute_hits + agg.precompute_misses).max(1);
                (
                    format!("{:.0}%", 100.0 * agg.precompute_hits as f64 / lookups as f64),
                    agg.precompute_misses.to_string(),
                )
            } else {
                ("-".into(), "-".into())
            };
            out.push_str(&format!(
                "  {:<5} {:>7} {:>8} {:>10.3} {:>8.0} {:>9.0}% {:>9.1} {:>8} {:>12} {:>10} \
                 {:>10} {:>8}\n",
                index,
                agg.batches,
                agg.jobs,
                agg.busy_us as f64 / 1e6,
                rate,
                100.0 * rate / best,
                agg.max_rss_kb as f64 / 1024.0,
                cpu,
                allocs,
                alloc_mb,
                memo_hit,
                resolves
            ));
        }
    }
    let dropped: u64 = shards.iter().map(|(_, a)| a.dropped_events).sum();
    if dropped > 0 {
        out.push_str(&format!(
            "\ntrace: {dropped} event(s) dropped by worker buffers (raise nothing — \
             the buffer is bounded by design; shard finer to shrink per-worker spans)\n"
        ));
    }
    if warnings.is_empty() {
        out.push_str("\nno straggler/stall warnings\n");
    } else {
        out.push_str("\nstraggler warnings:\n");
        for w in &warnings {
            out.push_str(&format!("  - {w}\n"));
        }
    }
    out
}

fn throughput(jobs: u64, busy_us: u64) -> f64 {
    if busy_us == 0 {
        0.0
    } else {
        jobs as f64 / (busy_us as f64 / 1e6)
    }
}

/// Per-pid-lane breakdown of a merged multi-process Chrome trace:
/// event count, covered wall span, and the busiest span (largest
/// summed duration) of every lane. Each data row starts with the
/// numeric pid, so `grep -c '^ *[0-9]'` counts lanes.
pub fn per_worker_summary(parsed: &trace::ParsedChromeTrace) -> String {
    let mut pids: Vec<u64> = parsed.events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    let mut out = format!(
        "{:>5}  {:<18} {:>8} {:>10}  {}\n",
        "pid", "lane", "events", "wall(s)", "busiest span"
    );
    for pid in pids {
        let name =
            parsed.lanes.iter().find(|(p, _)| *p == pid).map_or("(unnamed)", |(_, n)| n.as_str());
        let events: Vec<_> = parsed.events.iter().filter(|e| e.pid == pid).collect();
        let start = events.iter().map(|e| e.ts_us).min().unwrap_or(0);
        let end = events.iter().map(|e| e.ts_us + e.dur_us).max().unwrap_or(0);
        // Busiest span: the name with the largest total duration.
        let mut totals: Vec<(&str, u64)> = Vec::new();
        for e in &events {
            match totals.iter_mut().find(|(n, _)| *n == e.name.as_str()) {
                Some((_, d)) => *d += e.dur_us,
                None => totals.push((e.name.as_str(), e.dur_us)),
            }
        }
        let busiest = totals
            .iter()
            .max_by_key(|(_, d)| *d)
            .map_or_else(|| "-".to_string(), |(n, d)| format!("{n} ({:.3}s)", *d as f64 / 1e6));
        out.push_str(&format!(
            "{:>5}  {:<18} {:>8} {:>10.3}  {}\n",
            pid,
            name,
            events.len(),
            (end - start) as f64 / 1e6,
            busiest
        ));
    }
    out
}

/// Synthesizes trace events from a manifest's span totals (see
/// [`trace::synthesize_from_spans`] for the layout rules).
pub fn manifest_trace_events(m: &ParsedManifest) -> Vec<trace::TraceEvent> {
    let totals: Vec<(String, f64)> =
        m.spans.iter().map(|(path, s)| (path.clone(), s.total_seconds)).collect();
    trace::synthesize_from_spans(&totals)
}

/// Synthesizes a Chrome `trace_event` document from a manifest's span
/// totals (see [`trace::synthesize_from_spans`] for the layout rules).
pub fn trace_from_manifest(m: &ParsedManifest) -> Json {
    trace::chrome_trace_json(&manifest_trace_events(m))
}

/// Renders a manifest's span totals as folded stacks (`a;b;c self_us`
/// per line), the input format of Brendan Gregg's `flamegraph.pl` and
/// the inferno toolchain. Delegates to [`udse_obs::span::folded`] after
/// converting the manifest's second-resolution totals to microseconds.
pub fn folded_from_manifest(m: &ParsedManifest) -> String {
    let stats: Vec<(String, udse_obs::span::SpanStat)> = m
        .spans
        .iter()
        .map(|(path, s)| {
            let total = std::time::Duration::from_secs_f64(s.total_seconds.max(0.0));
            let max = std::time::Duration::from_secs_f64(s.max_seconds.max(0.0));
            let cpu = std::time::Duration::from_secs_f64(s.cpu_seconds.max(0.0));
            let stat = udse_obs::span::SpanStat {
                count: s.count,
                total,
                max,
                cpu,
                allocs: s.allocs,
                alloc_bytes: s.alloc_bytes,
            };
            (path.clone(), stat)
        })
        .collect();
    udse_obs::span::folded(&stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udse_obs::manifest::{ArtifactRecord, SpanTotal};
    use udse_obs::QualityRecord;

    fn manifest(
        artifacts: &[(&str, f64)],
        quality: &[(&str, f64, f64)], // (key, p50, p90)
        counters: &[(&str, i64)],
    ) -> ParsedManifest {
        ParsedManifest {
            schema_version: 2,
            tool: "repro".into(),
            created_unix_ms: 1,
            config: vec![],
            artifacts: artifacts
                .iter()
                .map(|&(n, w)| ArtifactRecord { name: n.into(), wall_seconds: w })
                .collect(),
            metrics: counters.iter().map(|&(n, v)| (n.to_string(), Json::Int(v))).collect(),
            spans: vec![(
                "all".into(),
                SpanTotal {
                    count: 1,
                    total_seconds: 1.0,
                    max_seconds: 1.0,
                    ..SpanTotal::default()
                },
            )],
            quality: quality
                .iter()
                .map(|&(key, p50, p90)| QualityRecord {
                    key: key.into(),
                    n: 25,
                    p50,
                    p90,
                    max: p90 * 2.0,
                    bias: -0.001,
                    rmse: p90,
                    r_squared: 0.99,
                })
                .collect(),
            resources: None,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let m = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.02, 0.06)], &[("c", 5)]);
        let report = diff(&m, &m, &DiffTolerances::default());
        assert!(!report.is_regression(), "report: {}", report.render());
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn quality_regression_beyond_tolerance_gates() {
        let old = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.02, 0.06)], &[]);
        let new = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.08, 0.06)], &[]);
        let report = diff(&old, &new, &DiffTolerances::default());
        assert!(report.is_regression());
        assert!(report.regressions[0].contains("p50"), "{:?}", report.regressions);
        // Within tolerance: fine.
        let ok = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.03, 0.06)], &[]);
        assert!(!diff(&old, &ok, &DiffTolerances::default()).is_regression());
        // Improvement is never a regression.
        let better = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.01, 0.02)], &[]);
        assert!(!diff(&old, &better, &DiffTolerances::default()).is_regression());
    }

    #[test]
    fn pooled_records_use_the_tighter_budget() {
        // A +0.015 p50 drift passes the default 0.02 per-benchmark budget
        // but violates the 0.01 pooled budget.
        let old = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.020, 0.06)], &[]);
        let new = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.035, 0.06)], &[]);
        let report = diff(&old, &new, &DiffTolerances::default());
        assert!(report.is_regression(), "pooled p50 must gate at the tight budget");
        assert!(report.regressions[0].contains("0.0100"), "{:?}", report.regressions);
    }

    #[test]
    fn per_benchmark_records_use_the_default_budget() {
        // The same +0.015 p50 drift on a per-benchmark record stays
        // inside the looser 0.02 default budget.
        let old = manifest(&[("fig1", 3.0)], &[("validation.ammp.bips", 0.020, 0.06)], &[]);
        let new = manifest(&[("fig1", 3.0)], &[("validation.ammp.bips", 0.035, 0.06)], &[]);
        assert!(!diff(&old, &new, &DiffTolerances::default()).is_regression());
        // ... but a +0.025 drift gates.
        let worse = manifest(&[("fig1", 3.0)], &[("validation.ammp.bips", 0.046, 0.06)], &[]);
        assert!(diff(&old, &worse, &DiffTolerances::default()).is_regression());
    }

    #[test]
    fn max_statistic_uses_the_loosest_budget() {
        // The helper derives max = 2 * p90, so moving p90 moves max.
        // A p90 drift of +0.018: within the default 0.02 for p90 itself,
        // max moves +0.036 — within the 0.05 max budget. No gate.
        let old = manifest(&[("fig1", 3.0)], &[("validation.ammp.bips", 0.01, 0.060)], &[]);
        let new = manifest(&[("fig1", 3.0)], &[("validation.ammp.bips", 0.01, 0.078)], &[]);
        assert!(!diff(&old, &new, &DiffTolerances::default()).is_regression());
        // A p90 drift of +0.03 pushes max up +0.06 > 0.05: both gate, and
        // the max violation reports the loose budget.
        let worse = manifest(&[("fig1", 3.0)], &[("validation.ammp.bips", 0.01, 0.090)], &[]);
        let report = diff(&old, &worse, &DiffTolerances::default());
        assert!(report.is_regression());
        assert!(
            report.regressions.iter().any(|r| r.contains("max") && r.contains("0.0500")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn quality_budget_selection() {
        let tol = DiffTolerances::default();
        assert_eq!(tol.quality_budget("validation.pooled.bips", "p50"), 0.01);
        assert_eq!(tol.quality_budget("validation.pooled.bips", "max"), 0.05);
        assert_eq!(tol.quality_budget("validation.ammp.bips", "p50"), 0.02);
        assert_eq!(tol.quality_budget("depth.original.eff", "bias"), 0.02);
        assert_eq!(tol.quality_budget("heterogeneity.compromise.watts", "max"), 0.05);
    }

    #[test]
    fn merged_shard_manifests_diff_clean_against_single_process() {
        // A 2-shard run: the parent holds the artifact walls and quality,
        // each worker holds its slice of the simulation counters. Merged,
        // the counters reconstruct the single-process totals and the diff
        // gate passes.
        let single = manifest(
            &[("fig1", 2.0)],
            &[("validation.pooled.bips", 0.02, 0.06)],
            &[("sim.instructions", 1_000)],
        );
        let parent = manifest(
            &[("fig1", 2.2)],
            &[("validation.pooled.bips", 0.02, 0.06)],
            &[("sim.instructions", 400)],
        );
        let w0 = manifest(&[], &[], &[("sim.instructions", 300)]);
        let w1 = manifest(&[], &[], &[("sim.instructions", 300)]);
        let doc = merge(&[("parent".into(), parent), ("w0".into(), w0), ("w1".into(), w1)], 1e-9)
            .expect("consistent manifests merge");
        let merged = ParsedManifest::parse(&doc.to_string_pretty()).expect("merge output parses");
        assert_eq!(merged.metric("sim.instructions").and_then(Json::as_i64), Some(1_000));
        let report = diff(&single, &merged, &DiffTolerances::default());
        assert!(!report.is_regression(), "report: {}", report.render());
    }

    #[test]
    fn folded_export_from_manifest() {
        let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
        m.spans = vec![
            (
                "all".into(),
                SpanTotal {
                    count: 1,
                    total_seconds: 1.0,
                    max_seconds: 1.0,
                    ..SpanTotal::default()
                },
            ),
            (
                "all/fit".into(),
                SpanTotal {
                    count: 9,
                    total_seconds: 0.4,
                    max_seconds: 0.1,
                    ..SpanTotal::default()
                },
            ),
        ];
        let folded = folded_from_manifest(&m);
        assert_eq!(folded, "all 600000\nall;fit 400000\n");
    }

    #[test]
    fn lost_quality_record_gates() {
        let old = manifest(&[("fig1", 3.0)], &[("validation.pooled.bips", 0.02, 0.06)], &[]);
        let new = manifest(&[("fig1", 3.0)], &[], &[]);
        let report = diff(&old, &new, &DiffTolerances::default());
        assert!(report.is_regression());
        assert!(report.regressions[0].contains("disappeared"));
    }

    #[test]
    fn wall_regression_gates_unless_warn_only() {
        let old = manifest(&[("fig1", 2.0)], &[], &[]);
        let new = manifest(&[("fig1", 3.0)], &[], &[]);
        assert!(diff(&old, &new, &DiffTolerances::default()).is_regression());
        let tol = DiffTolerances { warn_wall: true, ..DiffTolerances::default() };
        let report = diff(&old, &new, &tol);
        assert!(!report.is_regression());
        assert!(!report.warnings.is_empty(), "demoted to warning");
        // Sub-floor jitter on a tiny artifact never gates.
        let old = manifest(&[("space", 0.001)], &[], &[]);
        let new = manifest(&[("space", 0.010)], &[], &[]);
        assert!(!diff(&old, &new, &DiffTolerances::default()).is_regression());
    }

    #[test]
    fn watched_gauge_drop_warns_but_does_not_gate() {
        let gauge = |v: f64| {
            let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
            m.metrics.push(("sweep.designs_per_sec".into(), Json::Float(v)));
            m
        };
        let tol = DiffTolerances {
            gauge_warn: vec![("sweep.designs_per_sec".into(), 50.0)],
            ..DiffTolerances::default()
        };
        let (old, slow, ok) = (gauge(100_000.0), gauge(40_000.0), gauge(60_000.0));
        let report = diff(&old, &slow, &tol);
        assert!(!report.is_regression(), "gauges never gate");
        assert!(report.warnings.iter().any(|w| w.contains("sweep.designs_per_sec")));
        // A drop within the allowance stays quiet.
        assert!(diff(&old, &ok, &tol).warnings.is_empty());
        // Unwatched gauges are ignored entirely.
        assert!(diff(&old, &slow, &DiffTolerances::default()).warnings.is_empty());
        // A watched gauge missing from a manifest warns.
        let bare = manifest(&[("fig1", 1.0)], &[], &[]);
        assert!(diff(&old, &bare, &tol).warnings.iter().any(|w| w.contains("missing")));
    }

    #[test]
    fn gauge_floor_gates_hard_on_the_new_run() {
        let gauge = |v: f64| {
            let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
            m.metrics.push(("sweep.designs_per_sec".into(), Json::Float(v)));
            m
        };
        let tol = DiffTolerances {
            min_gauge: vec![("sweep.designs_per_sec".into(), 50_000.0)],
            ..DiffTolerances::default()
        };
        let old = gauge(100_000.0);
        // Below the floor: gates regardless of how the baseline moved.
        let report = diff(&old, &gauge(40_000.0), &tol);
        assert!(report.is_regression());
        assert!(report.regressions[0].contains("hard floor"), "{:?}", report.regressions);
        // At or above the floor: passes, even if below the baseline.
        assert!(!diff(&old, &gauge(50_000.0), &tol).is_regression());
        assert!(!diff(&old, &gauge(80_000.0), &tol).is_regression());
        // The floor reads only the NEW run: a baseline without the gauge
        // still gates a floored new run correctly.
        let bare = manifest(&[("fig1", 1.0)], &[], &[]);
        assert!(!diff(&bare, &gauge(80_000.0), &tol).is_regression());
        // A floored gauge missing from the new run gates — losing the
        // telemetry must not silently disable the gate.
        let report = diff(&old, &bare, &tol);
        assert!(report.is_regression());
        assert!(report.regressions[0].contains("missing"), "{:?}", report.regressions);
        // Unfloored runs are unaffected.
        assert!(!diff(&old, &gauge(40_000.0), &DiffTolerances::default()).is_regression());
    }

    #[test]
    fn resource_rise_gates_a_deliberately_allocating_regression() {
        let alloc = |bytes: i64| {
            let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
            m.metrics.push(("alloc.bytes".into(), Json::Int(bytes)));
            m
        };
        let tol = DiffTolerances {
            resource_gate: vec![("alloc.bytes".into(), 10.0, 1024.0)],
            ..DiffTolerances::default()
        };
        let old = alloc(100_000);
        // A 4x allocation rise gates hard — unlike gauge_warn, which
        // only watches falls and never gates.
        let report = diff(&old, &alloc(400_000), &tol);
        assert!(report.is_regression());
        assert!(report.regressions[0].contains("alloc.bytes"), "{:?}", report.regressions);
        // Identical usage and improvement pass.
        assert!(!diff(&old, &alloc(100_000), &tol).is_regression());
        assert!(!diff(&old, &alloc(50_000), &tol).is_regression());
        // A big relative rise on a tiny baseline stays under the
        // absolute floor: +90% but only 900 bytes.
        assert!(!diff(&alloc(1_000), &alloc(1_900), &tol).is_regression());
        // Unwatched resource metrics never gate.
        assert!(!diff(&old, &alloc(400_000), &DiffTolerances::default()).is_regression());
        // A watched resource missing from a manifest warns.
        let bare = manifest(&[("fig1", 1.0)], &[], &[]);
        assert!(diff(&old, &bare, &tol).warnings.iter().any(|w| w.contains("missing")));
    }

    #[test]
    fn zero_baseline_resource_gate_enforces_allocation_free_claims() {
        let gauge = |v: f64| {
            let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
            m.metrics.push(("sweep.allocs_per_design".into(), Json::Float(v)));
            m
        };
        let tol = DiffTolerances {
            resource_gate: vec![("sweep.allocs_per_design".into(), 100.0, 0.05)],
            ..DiffTolerances::default()
        };
        // Baseline zero: any rise past the floor gates, keeping "the
        // compiled sweep allocates nothing per design" enforced.
        assert!(diff(&gauge(0.0), &gauge(0.2), &tol).is_regression());
        // Sub-floor noise (per-chunk bookkeeping amortized over the
        // grid) and a clean zero both pass.
        assert!(!diff(&gauge(0.0), &gauge(0.01), &tol).is_regression());
        assert!(!diff(&gauge(0.0), &gauge(0.0), &tol).is_regression());
    }

    #[test]
    fn resource_gate_reads_the_resources_section_with_prefix() {
        use udse_obs::manifest::ResourceTotals;
        let with = |alloc_bytes: u64| {
            let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
            m.resources = Some(ResourceTotals {
                alloc_counting: true,
                allocs: 10,
                deallocs: 10,
                alloc_bytes,
                peak_bytes: alloc_bytes,
                peak_rss_kb: Some(10_000),
                cpu_seconds: Some(1.0),
            });
            m
        };
        let tol = DiffTolerances {
            resource_gate: vec![("resources.alloc_bytes".into(), 10.0, 0.0)],
            ..DiffTolerances::default()
        };
        assert!(diff(&with(1_000), &with(2_000), &tol).is_regression());
        assert!(!diff(&with(1_000), &with(1_000), &tol).is_regression());
        // Pre-v3 manifests (no resources section) warn, not crash/gate.
        let pre = manifest(&[("fig1", 1.0)], &[], &[]);
        let report = diff(&pre, &with(1_000), &tol);
        assert!(!report.is_regression());
        assert!(report.warnings.iter().any(|w| w.contains("missing")));
    }

    #[test]
    fn counter_drift_warns_but_does_not_gate() {
        let old = manifest(&[("fig1", 1.0)], &[], &[("sim.instructions", 1_000)]);
        let new = manifest(&[("fig1", 1.0)], &[], &[("sim.instructions", 2_000)]);
        let report = diff(&old, &new, &DiffTolerances::default());
        assert!(!report.is_regression());
        assert!(report.warnings.iter().any(|w| w.contains("sim.instructions")));
    }

    #[test]
    fn show_renders_every_section() {
        let m = manifest(
            &[("fig1", 3.0)],
            &[("validation.ammp.bips", 0.03, 0.07)],
            &[("oracle.cache.hits", 12)],
        );
        let text = show(&m);
        for needle in
            ["tool: repro", "fig1", "TOTAL", "validation.ammp.bips", "oracle.cache.hits", "all"]
        {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn show_renders_query_section_only_when_queries_ran() {
        let without = manifest(&[("fig1", 1.0)], &[], &[("oracle.cache.hits", 12)]);
        assert!(!show(&without).contains("query engine:"), "{}", show(&without));
        let mut m = manifest(
            &[("query", 0.5)],
            &[],
            &[
                ("query.executed", 10),
                ("query.cache.hits", 6),
                ("query.cache.misses", 4),
                ("query.cache.evictions", 1),
            ],
        );
        m.metrics.push(("query.cache.bytes".into(), Json::Float(2048.0)));
        m.metrics.push(("query.designs_per_sec".into(), Json::Float(1.5e6)));
        let text = show(&m);
        for needle in [
            "query engine:",
            "executed: 10",
            "6 hits / 4 misses (60% hit rate)",
            "1 evicted",
            "scan throughput: 1500000 designs/sec",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn show_renders_resources_and_span_resource_columns() {
        use udse_obs::manifest::ResourceTotals;
        let mut m = manifest(&[("fig1", 1.0)], &[], &[]);
        // Pre-v3: no resources section, no span resource columns — an
        // all-zero allocs column would read as an allocation-free claim.
        let text = show(&m);
        assert!(!text.contains("resources:"), "{text}");
        assert!(!text.contains("cpu"), "{text}");
        m.resources = Some(ResourceTotals {
            alloc_counting: true,
            allocs: 1_000,
            deallocs: 990,
            alloc_bytes: 3 << 20,
            peak_bytes: 1 << 20,
            peak_rss_kb: Some(51_200),
            cpu_seconds: Some(2.5),
        });
        m.spans[0].1.cpu_seconds = 0.75;
        m.spans[0].1.allocs = 42;
        m.spans[0].1.alloc_bytes = 2048;
        let text = show(&m);
        assert!(text.contains("cpu time: 2.500s"), "{text}");
        assert!(text.contains("peak rss: 50.0 MB"), "{text}");
        assert!(text.contains("1000 allocs / 990 frees"), "{text}");
        assert!(text.contains("42 allocs"), "missing span alloc column:\n{text}");
        assert!(text.contains("2.0 KiB"), "span alloc bytes not humanized:\n{text}");
        // A manifest whose producer had no counting allocator says so
        // instead of claiming zero heap usage.
        m.resources = Some(ResourceTotals { alloc_counting: false, ..m.resources.unwrap() });
        assert!(show(&m).contains("not measured"), "{}", show(&m));
    }

    #[test]
    fn manifest_trace_is_valid_chrome_json() {
        let m = manifest(&[("fig1", 1.0)], &[], &[]);
        let doc = trace_from_manifest(&m);
        let arr = doc.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("name").and_then(Json::as_str), Some("all"));
        assert_eq!(arr[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(arr[0].get("dur").and_then(Json::as_i64), Some(1_000_000));
    }

    fn sidecar_doc(
        shard: u64,
        jobs: u64,
        beats: &[(u64, u64)],             // (t_us, done)
        summary: Option<(u64, u64, u64)>, // (done, wall_us, dropped_events)
    ) -> (std::path::PathBuf, udse_obs::sidecar::SidecarDoc) {
        use udse_obs::sidecar::{Heartbeat, SidecarDoc, SidecarMeta, Summary};
        let doc = SidecarDoc {
            meta: Some(SidecarMeta {
                pid: 1000 + shard,
                plan_label: "fig1".into(),
                shard_index: shard,
                shard_count: 2,
                jobs,
                anchor_unix_us: 0,
            }),
            heartbeats: beats
                .iter()
                .map(|&(t_us, done)| Heartbeat {
                    t_us,
                    done,
                    total: jobs,
                    last_job: done.checked_sub(1),
                    rss_kb: Some(10_240),
                })
                .collect(),
            spans: vec![],
            events: vec![],
            summary: summary.map(|(done, wall_us, dropped_events)| Summary {
                done,
                wall_us,
                dropped_events,
                cpu_us: Some(wall_us / 2),
                allocs: Some(done * 10),
                alloc_bytes: Some(done * 1024),
                peak_rss_kb: Some(20_480),
                precompute_hits: Some(done * 2),
                precompute_misses: Some(done / 2),
            }),
            problems: vec![],
        };
        (std::path::PathBuf::from(format!("shard-{shard}.telemetry.jsonl")), doc)
    }

    #[test]
    fn report_without_sidecars_points_at_shard_dir() {
        let m = manifest(&[("fig1", 1.0)], &[], &[]);
        let text = report(&m, &[], &[], std::time::Duration::from_secs(30));
        assert!(text.contains("no telemetry sidecars"), "{text}");
        // The manifest half of the report is still present.
        assert!(text.contains("tool: repro"), "{text}");
    }

    #[test]
    fn report_renders_skew_stragglers_and_unclean_exits() {
        let m = manifest(&[("fig1", 1.0)], &[], &[]);
        // Shard 0: clean, steady heartbeats, fast.
        let a = sidecar_doc(0, 100, &[(0, 10), (100_000, 60)], Some((100, 1_000_000, 0)));
        // Shard 1: a 5 s heartbeat gap against a 1 s threshold, no
        // summary record (killed), and dropped trace events reported by
        // its last heartbeat-derived estimate.
        let b = sidecar_doc(1, 100, &[(0, 5), (5_000_000, 20)], None);
        let problems = vec!["shard-1: truncated final line".to_string()];
        let text = report(&m, &[a, b], &problems, std::time::Duration::from_secs(1));
        assert!(text.contains("shard"), "{text}");
        assert!(text.contains("jobs/s"), "missing throughput column:\n{text}");
        assert!(text.contains("heartbeat gap"), "missing straggler warning:\n{text}");
        assert!(text.contains("did not exit cleanly"), "missing unclean-exit warning:\n{text}");
        assert!(text.contains("truncated final line"), "collector problems not surfaced:\n{text}");
        // Resource columns: shard 0's summary reports cpu = wall/2 and
        // 10 allocs/job; shard 1 died without a summary, so its
        // resources are unknown and must render as `-`, never 0.
        assert!(text.contains("cpu(s)"), "missing cpu column:\n{text}");
        assert!(text.contains("alloc(MB)"), "missing alloc column:\n{text}");
        let row0 = text.lines().find(|l| l.trim_start().starts_with("0 ")).unwrap();
        assert!(row0.contains("0.500") && row0.contains("1000"), "{row0}");
        let row1 = text.lines().find(|l| l.trim_start().starts_with("1 ")).unwrap();
        assert!(row1.contains('-'), "unknown resources must render as -: {row1}");
    }

    #[test]
    fn report_notes_dropped_trace_events() {
        let m = manifest(&[("fig1", 1.0)], &[], &[]);
        let a = sidecar_doc(0, 10, &[(0, 10)], Some((10, 500_000, 7)));
        let text = report(&m, &[a], &[], std::time::Duration::from_secs(30));
        assert!(text.contains("dropped"), "{text}");
        assert!(text.contains('7'), "{text}");
    }

    #[test]
    fn per_worker_summary_groups_events_by_pid_lane() {
        use udse_obs::trace::{ParsedChromeTrace, Phase, TraceEvent};
        let ev = |name: &str, pid: u64, ts_us: u64, dur_us: u64| TraceEvent {
            name: name.into(),
            cat: "span".into(),
            phase: Phase::Complete,
            ts_us,
            dur_us,
            pid,
            tid: 0,
        };
        let parsed = ParsedChromeTrace {
            events: vec![
                ev("oracle", 1, 0, 2_000_000),
                ev("fit", 1, 100, 500_000),
                ev("worker", 2, 50, 1_000_000),
            ],
            lanes: vec![(1, "repro (parent)".into()), (2, "worker shard 0".into())],
        };
        let text = per_worker_summary(&parsed);
        assert!(text.contains("repro (parent)"), "{text}");
        assert!(text.contains("worker shard 0"), "{text}");
        // Parent lane: 2 events, busiest span is `oracle`.
        let parent_row = text.lines().find(|l| l.contains("repro (parent)")).unwrap();
        assert!(parent_row.trim_start().starts_with('1'), "{parent_row}");
        assert!(parent_row.contains("oracle"), "{parent_row}");
        // An unnamed lane still renders.
        let bare = ParsedChromeTrace { events: vec![ev("x", 9, 0, 1)], lanes: vec![] };
        assert!(per_worker_summary(&bare).contains("(unnamed)"));
    }
}
