//! Gnuplot script generation for the exported CSV series.
//!
//! `repro --csv <dir>` writes `<artifact>.csv`; this module adds a
//! matching `<artifact>.gp` so `gnuplot <artifact>.gp` regenerates a
//! figure visually comparable to the paper's. Scripts are deliberately
//! plain (pngcairo terminal, default styles) and reference the CSV by
//! relative path so the directory is self-contained.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Returns the gnuplot script text for an artifact, or `None` when no
/// plot is defined for it.
pub fn script(artifact: &str) -> Option<String> {
    let body = match artifact {
        "fig1" => {
            "\
set title 'Figure 1: median prediction error per benchmark'\n\
set ylabel 'median |obs-pred|/pred'\n\
set style data histogram\n\
set style histogram clustered\n\
set style fill solid 0.7\n\
set yrange [0:*]\n\
plot 'fig1.csv' using 2:xtic(1) title 'performance', \
     '' using 5 title 'power'\n"
        }
        "fig3" => {
            "\
set title 'Figure 3: pareto frontier, predicted vs simulated'\n\
set xlabel 'delay (s per 10^9 instructions)'\n\
set ylabel 'power (W)'\n\
plot 'fig3.csv' using 2:3 with points pt 7 title 'predicted', \
     '' using 4:5 with points pt 6 title 'simulated'\n"
        }
        "fig5a" => {
            "\
set title 'Figure 5a: efficiency vs pipeline depth'\n\
set xlabel 'FO4 per stage'\n\
set ylabel 'relative bips^3/w'\n\
set key bottom\n\
plot 'fig5a.csv' using 1:4:3:7 with yerrorbars title 'enhanced (q1..q3 around median)', \
     '' using 1:2 with linespoints lw 2 title 'original analysis', \
     '' using 1:8 with linespoints title 'bound architecture'\n"
        }
        "fig5b" => {
            "\
set title 'Figure 5b: D-L1 sizes among top designs per depth'\n\
set xlabel 'FO4 per stage'\n\
set ylabel 'fraction of 95th-percentile designs'\n\
set key outside\n\
plot for [kb in '8 16 32 64 128'] \
'<awk -F, -v k='.kb.' \"$2==k\" fig5b.csv' using 1:3 \
with linespoints title kb.' KB'\n"
        }
        "fig9" => {
            "\
set title 'Figure 9: efficiency gain vs heterogeneity (cluster count)'\n\
set xlabel 'clusters (K)'\n\
set ylabel 'bips^3/w gain vs baseline'\n\
set key left\n\
plot 'fig9.csv' using 1:3 with points pt 7 ps 0.5 title 'per-benchmark predicted', \
     '' using 1:4 with points pt 6 ps 0.5 title 'per-benchmark simulated'\n"
        }
        _ => return None,
    };
    Some(format!(
        "set terminal pngcairo size 900,600\nset output '{artifact}.png'\nset datafile separator ','\nset key autotitle columnheader\n{body}"
    ))
}

/// Writes the gnuplot script for an artifact into `dir`, next to its CSV.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export(artifact: &str, dir: &Path) -> io::Result<Option<PathBuf>> {
    match script(artifact) {
        None => Ok(None),
        Some(text) => {
            let path = dir.join(format!("{artifact}.gp"));
            let mut f = std::fs::File::create(&path)?;
            f.write_all(text.as_bytes())?;
            Ok(Some(path))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_reference_their_csv_and_output() {
        for a in ["fig1", "fig3", "fig5a", "fig5b", "fig9"] {
            let s = script(a).expect("plot defined");
            assert!(s.contains(&format!("{a}.csv")), "{a} must read its csv");
            assert!(s.contains(&format!("{a}.png")), "{a} must set its output");
            assert!(s.contains("set datafile separator ','"));
        }
        assert!(script("baseline").is_none());
    }

    #[test]
    fn export_writes_file() {
        let dir = std::env::temp_dir().join("udse_gp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = export("fig5a", &dir).unwrap().unwrap();
        assert!(std::fs::read_to_string(&p).unwrap().contains("Figure 5a"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
