//! Multi-process sharded evaluation: the parent side of `repro --shards`.
//!
//! [`ShardedOracle`] turns every simulation batch into an on-disk
//! [`EvalPlan`], forks one `repro worker` child per shard, and
//! reassembles the per-shard result files in job-ID order. Because each
//! worker evaluates a deterministic contiguous slice of the plan with an
//! oracle rebuilt from the plan's [`SimSpec`], the assembled metrics are
//! bitwise-identical to an in-process `--jobs`-only run — sharding only
//! changes where the work happens, never the numbers.
//!
//! [`GroundTruth`] is the oracle the experiment [`crate::Context`]
//! actually holds: either a plain in-process [`SimOracle`] or a
//! [`ShardedOracle`]. Point lookups (`evaluate`) always run in-process —
//! forking a worker per single simulation would be absurd — while batch
//! evaluation (`evaluate_many` / `evaluate_plan`) is where the fork
//! happens. The memoizing [`udse_core::CachedOracle`] sits *above* this
//! enum, so every study batch dedups first and then shards automatically.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use udse_core::oracle::{Metrics, Oracle, SimOracle};
use udse_core::plan::{EvalPlan, SimSpec};
use udse_core::space::DesignPoint;
use udse_obs::sharded::{ResultShard, ShardedResults};
use udse_obs::sidecar::{self, SidecarRecord, SIDECAR_SUFFIX};
use udse_obs::ShardProgress;
use udse_trace::Benchmark;

/// How often the parent polls children and tails their telemetry
/// sidecars while a batch is in flight.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Default silence threshold before a worker is flagged as a straggler
/// or stall; override with the `UDSE_STALL_SECS` environment variable
/// or [`ShardedOracle::with_stall_after`].
const DEFAULT_STALL_AFTER: Duration = Duration::from_secs(30);

/// Evaluates plans by forking `repro worker` child processes, one per
/// shard, and reassembling their result files.
#[derive(Debug)]
pub struct ShardedOracle {
    sim: SimOracle,
    shards: usize,
    exe: PathBuf,
    dir: PathBuf,
    worker_jobs: usize,
    batch: AtomicU64,
    stall_after: Duration,
    stalls: Mutex<Vec<String>>,
}

impl ShardedOracle {
    /// Creates a sharding oracle.
    ///
    /// `sim` defines the simulator spec workers must reproduce; `shards`
    /// is the number of worker processes per batch; `exe` is the `repro`
    /// binary to fork; `dir` receives the plan, shard, and per-worker
    /// manifest files; `worker_jobs` caps each worker's thread pool.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `worker_jobs` is zero.
    pub fn new(
        sim: SimOracle,
        shards: usize,
        exe: PathBuf,
        dir: PathBuf,
        worker_jobs: usize,
    ) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        assert!(worker_jobs >= 1, "worker jobs must be at least 1");
        let stall_after = std::env::var("UDSE_STALL_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .map_or(DEFAULT_STALL_AFTER, Duration::from_secs_f64);
        ShardedOracle {
            sim,
            shards,
            exe,
            dir,
            worker_jobs,
            batch: AtomicU64::new(0),
            stall_after,
            stalls: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the heartbeat-silence threshold after which an
    /// unfinished worker is flagged as a straggler or stall.
    #[must_use]
    pub fn with_stall_after(mut self, threshold: Duration) -> Self {
        self.stall_after = threshold;
        self
    }

    /// Straggler/stall warnings accumulated across all batches, in
    /// detection order (also logged to stderr as they happen). The run
    /// report surfaces these.
    pub fn stall_log(&self) -> Vec<String> {
        self.stalls.lock().expect("stall log poisoned").clone()
    }

    /// The in-process oracle defining the simulator spec (also used for
    /// single-point lookups, which never fork).
    pub fn sim(&self) -> &SimOracle {
        &self.sim
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The directory receiving plan/shard/manifest files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Evaluates a plan by forking one worker per shard and reassembling
    /// the result shards in job-ID order. The worker count is capped at
    /// the job count, so tiny batches do not fork idle processes; the
    /// result is independent of the cap because assembly is by job ID.
    ///
    /// While the workers run, the parent tails their telemetry sidecars
    /// (see [`udse_obs::sidecar`]): heartbeats feed a live per-shard
    /// progress meter, and a worker silent past the stall threshold is
    /// warned about — naming its shard, last-known job, and whether the
    /// process is still alive (straggler) or already dead. Worker
    /// stderr is piped through the parent with a `[shard i/N]` prefix
    /// so interleaved logs stay attributable.
    ///
    /// # Errors
    ///
    /// Fails when a worker cannot be spawned, exits non-zero, is killed
    /// by a signal, or leaves a missing/unreadable/inconsistent shard
    /// file. The message names each failed shard `i/N` and the exact
    /// `repro worker` command that retries its slice.
    pub fn run_plan(&self, plan: &EvalPlan) -> Result<Vec<Metrics>, String> {
        if plan.is_empty() {
            return Ok(Vec::new());
        }
        let count = self.shards.min(plan.len());
        let seq = self.batch.fetch_add(1, Ordering::Relaxed);
        if seq == 0 {
            remove_stale_sidecars(&self.dir);
        }
        let stem = format!("batch-{seq:04}-{}", sanitize(plan.label()));
        let plan_path = self.dir.join(format!("{stem}.plan.json"));
        let doc = plan.to_json(&SimSpec::of(&self.sim)).to_string_pretty();
        udse_obs::manifest::write_with_parents(&plan_path, &doc)
            .map_err(|e| format!("cannot write plan {}: {e}", plan_path.display()))?;
        let _span = udse_obs::span::enter("shards");
        udse_obs::metrics::counter("shard.batches").inc();
        udse_obs::metrics::counter("shard.workers").add(count as u64);
        udse_obs::info!(
            "shard",
            "plan `{}`: {} jobs across {count} worker(s) in {}",
            plan.label(),
            plan.len(),
            self.dir.display()
        );
        let mut workers = Vec::with_capacity(count);
        for i in 0..count {
            let out = self.dir.join(format!("{stem}.shard-{i}of{count}.json"));
            let manifest = self.dir.join(format!("{stem}.shard-{i}of{count}.manifest.json"));
            let telemetry = self.dir.join(format!("{stem}.shard-{i}of{count}{SIDECAR_SUFFIX}"));
            let retry = format!(
                "{} worker --plan {} --shard {i}/{count} --out {}",
                self.exe.display(),
                plan_path.display(),
                out.display()
            );
            let mut command = Command::new(&self.exe);
            command
                .arg("worker")
                .arg("--plan")
                .arg(&plan_path)
                .arg("--shard")
                .arg(format!("{i}/{count}"))
                .arg("--out")
                .arg(&out)
                .arg("--manifest")
                .arg(&manifest)
                .arg("--telemetry")
                .arg(&telemetry)
                .arg("--jobs")
                .arg(self.worker_jobs.to_string())
                .stderr(Stdio::piped());
            // Workers record their own trace events into the sidecar;
            // the parent merges them onto its timeline afterwards.
            if udse_obs::trace::enabled() {
                command.env("UDSE_TRACE", "1");
            }
            let mut child = command.spawn().map_err(|e| {
                format!("cannot spawn worker {i}/{count} ({}): {e}", self.exe.display())
            })?;
            let forwarder = child.stderr.take().map(|stderr| forward_stderr(i, count, stderr));
            workers.push(WorkerHandle {
                index: i,
                child,
                out,
                retry,
                telemetry,
                tail_offset: 0,
                status: None,
                forwarder,
            });
        }
        self.monitor(plan, count, &mut workers)?;
        let mut results = ShardedResults::new();
        let mut failures: Vec<String> = Vec::new();
        for worker in &mut workers {
            if let Some(thread) = worker.forwarder.take() {
                let _ = thread.join();
            }
            let i = worker.index;
            let status = worker.status.expect("monitor reaps every worker");
            if !status.success() {
                let how = match status.code() {
                    Some(code) => format!("exited with status {code}"),
                    None => "was killed by a signal".to_string(),
                };
                failures.push(format!("worker {i}/{count} {how}; retry with `{}`", worker.retry));
                continue;
            }
            match ResultShard::read_from_path(&worker.out) {
                Ok(shard) => {
                    if let Err(e) = results.push(shard) {
                        failures.push(format!("{e}; retry with `{}`", worker.retry));
                    }
                }
                Err(e) => failures.push(format!("{e}; retry with `{}`", worker.retry)),
            }
        }
        if !failures.is_empty() {
            return Err(failures.join("\n"));
        }
        let rows = results.assemble()?;
        rows.into_iter()
            .enumerate()
            .map(|(id, v)| match v[..] {
                [bips, watts] => Ok(Metrics { bips, watts }),
                _ => Err(format!(
                    "job {id} of plan `{}`: expected [bips, watts], got {} values",
                    plan.label(),
                    v.len()
                )),
            })
            .collect()
    }

    /// Polls children until all are reaped, tailing telemetry sidecars
    /// into a live per-shard progress meter and warning (once per shard
    /// per batch) about workers silent past the stall threshold. A
    /// silent-but-alive worker is a straggler or stall; a dead worker is
    /// reaped within one poll interval and reported through the normal
    /// failure path instead, which is what distinguishes the two.
    fn monitor(
        &self,
        plan: &EvalPlan,
        count: usize,
        workers: &mut [WorkerHandle],
    ) -> Result<(), String> {
        let totals: Vec<u64> =
            (0..count).map(|i| plan.shard_range(i, count).len() as u64).collect();
        let mut progress = ShardProgress::new(plan.label(), &totals);
        let mut warned = vec![false; count];
        loop {
            let mut pending = false;
            for worker in workers.iter_mut() {
                if worker.status.is_some() {
                    continue;
                }
                let status = worker
                    .child
                    .try_wait()
                    .map_err(|e| format!("waiting for worker {}/{count}: {e}", worker.index))?;
                match status {
                    Some(st) => {
                        // One final tail: the summary record lands
                        // between the last poll and process exit, and
                        // it carries the worker's resource totals.
                        worker.tail(&mut progress);
                        worker.status = Some(st);
                        progress.mark_finished(worker.index);
                    }
                    None => {
                        pending = true;
                        worker.tail(&mut progress);
                    }
                }
            }
            if !pending {
                break;
            }
            for stall in progress.stalled(self.stall_after) {
                if warned[stall.shard] {
                    continue;
                }
                warned[stall.shard] = true;
                let silence = self.stall_after.as_secs_f64();
                let last = match (stall.ever_beat, stall.last_job) {
                    (false, _) => "no heartbeat ever received".to_string(),
                    (true, Some(job)) => {
                        format!("last job {job}, {}/{} done", stall.done, stall.total)
                    }
                    (true, None) => format!("{}/{} done", stall.done, stall.total),
                };
                let message = format!(
                    "worker {}/{count} of plan `{}` silent for over {silence:.0}s \
                     (process alive; {last}) — straggler or stall",
                    stall.shard,
                    plan.label()
                );
                udse_obs::warn!("shard", "{message}");
                udse_obs::metrics::counter("shard.stalls").inc();
                self.stalls.lock().expect("stall log poisoned").push(message);
            }
            std::thread::sleep(POLL_INTERVAL);
        }
        let _ = progress.finish();
        Ok(())
    }
}

/// One forked worker while its batch is in flight.
#[derive(Debug)]
struct WorkerHandle {
    index: usize,
    child: Child,
    out: PathBuf,
    retry: String,
    telemetry: PathBuf,
    tail_offset: usize,
    status: Option<ExitStatus>,
    forwarder: Option<std::thread::JoinHandle<()>>,
}

impl WorkerHandle {
    /// Reads any new complete sidecar lines, feeds heartbeats into the
    /// progress meter, and rolls worker summary resources up into the
    /// parent's metrics. Best-effort: the sidecar may not exist yet.
    fn tail(&mut self, progress: &mut ShardProgress) {
        let Ok(text) = std::fs::read_to_string(&self.telemetry) else {
            return;
        };
        let (records, offset) = sidecar::parse_tail(&text, self.tail_offset);
        self.tail_offset = offset;
        for record in records {
            match record {
                SidecarRecord::Heartbeat(beat) => {
                    progress.heartbeat(self.index, beat.done, beat.last_job);
                }
                // Cross-process resource roll-up: child totals land in
                // the parent's metrics, so even a manifest-only run
                // (no `report --shard-dir`) records what its workers
                // cost. The tail offset guarantees each summary line is
                // seen exactly once, so plain counters sum correctly.
                SidecarRecord::Summary(s) => {
                    if let Some(v) = s.cpu_us {
                        udse_obs::metrics::counter("shard.worker.cpu_us").add(v);
                    }
                    if let Some(v) = s.allocs {
                        udse_obs::metrics::counter("shard.worker.allocs").add(v);
                    }
                    if let Some(v) = s.alloc_bytes {
                        udse_obs::metrics::counter("shard.worker.alloc_bytes").add(v);
                    }
                    // Namespaced like the other worker roll-ups: the
                    // workers' own manifests already carry
                    // `sim.precompute.*`, so folding the sidecar values
                    // into the same keys would double-count them when
                    // `udse-inspect merge` sums parent and worker
                    // manifests.
                    if let Some(v) = s.precompute_hits {
                        udse_obs::metrics::counter("shard.worker.precompute.hits").add(v);
                    }
                    if let Some(v) = s.precompute_misses {
                        udse_obs::metrics::counter("shard.worker.precompute.misses").add(v);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Relays one worker's piped stderr to the parent's, prefixing every
/// line with `[shard i/N]` so interleaved worker logs stay
/// attributable. The thread drains until the child closes the pipe.
fn forward_stderr(
    index: usize,
    count: usize,
    stderr: std::process::ChildStderr,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let reader = std::io::BufReader::new(stderr);
        for line in reader.lines() {
            match line {
                Ok(line) => eprintln!("[shard {index}/{count}] {line}"),
                Err(_) => break,
            }
        }
    })
}

/// Deletes telemetry sidecars left by a previous run so the post-run
/// harvest ([`udse_obs::sidecar::collect`]) only sees this run's
/// workers. Called once, before the first batch writes anything.
fn remove_stale_sidecars(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(SIDECAR_SUFFIX)) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Keeps plan labels filesystem-safe: anything outside `[A-Za-z0-9._-]`
/// becomes `-`.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
        .collect()
}

/// The ground-truth oracle an experiment context holds: in-process
/// simulation, or fan-out to `repro worker` child processes.
#[derive(Debug)]
pub enum GroundTruth {
    /// Evaluate everything in-process (the `--jobs` thread pool).
    Local(SimOracle),
    /// Fork batches to worker processes (`repro --shards N`).
    Sharded(ShardedOracle),
}

impl GroundTruth {
    /// The underlying simulation oracle (trace access, spec capture).
    pub fn sim(&self) -> &SimOracle {
        match self {
            GroundTruth::Local(sim) => sim,
            GroundTruth::Sharded(sharded) => sharded.sim(),
        }
    }
}

impl Oracle for GroundTruth {
    /// Single-point lookups always run in-process; forking a worker per
    /// simulation would dwarf the simulation itself.
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        self.sim().evaluate(benchmark, point)
    }

    /// Batch evaluation is where sharding happens: a `Sharded` oracle
    /// wraps the jobs in an anonymous batch plan and forks workers.
    ///
    /// # Panics
    ///
    /// Panics in sharded mode when a worker fails; the message names the
    /// failed shard and the exact retry command (see
    /// [`ShardedOracle::run_plan`]).
    fn evaluate_many(&self, jobs: &[(Benchmark, DesignPoint)]) -> Vec<Metrics> {
        match self {
            GroundTruth::Local(sim) => sim.evaluate_many(jobs),
            GroundTruth::Sharded(sharded) => {
                let plan = EvalPlan::from_jobs("batch", jobs.to_vec());
                sharded
                    .run_plan(&plan)
                    .unwrap_or_else(|e| panic!("sharded evaluation failed:\n{e}"))
            }
        }
    }

    /// Plans shard directly (preserving their label in the on-disk file
    /// names) instead of being re-wrapped as anonymous batches.
    fn evaluate_plan(&self, plan: &EvalPlan) -> Vec<Metrics> {
        udse_obs::metrics::counter("plan.jobs").add(plan.len() as u64);
        match self {
            GroundTruth::Local(sim) => sim.evaluate_many(plan.jobs()),
            GroundTruth::Sharded(sharded) => {
                sharded.run_plan(plan).unwrap_or_else(|e| panic!("sharded evaluation failed:\n{e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_only() {
        assert_eq!(sanitize("depth.validation"), "depth.validation");
        assert_eq!(sanitize("a b/c"), "a-b-c");
        assert_eq!(sanitize("batch-3"), "batch-3");
    }

    #[test]
    fn ground_truth_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GroundTruth>();
        assert_send_sync::<ShardedOracle>();
    }

    #[test]
    fn local_ground_truth_matches_plain_oracle() {
        let gt = GroundTruth::Local(SimOracle::with_trace_len(1_000));
        let plain = SimOracle::with_trace_len(1_000);
        let p = udse_core::space::DesignSpace::paper().decode(123).unwrap();
        let a = gt.evaluate(Benchmark::Gcc, &p);
        let b = plain.evaluate(Benchmark::Gcc, &p);
        assert_eq!(a, b);
        let jobs = vec![(Benchmark::Gcc, p), (Benchmark::Mcf, p)];
        assert_eq!(gt.evaluate_many(&jobs), plain.evaluate_many(&jobs));
    }

    #[test]
    fn sharded_run_plan_surfaces_spawn_failure() {
        let dir = std::env::temp_dir().join(format!("udse_shard_spawn_{}", std::process::id()));
        let oracle = ShardedOracle::new(
            SimOracle::with_trace_len(1_000),
            2,
            PathBuf::from("/nonexistent/repro-binary"),
            dir.clone(),
            1,
        );
        let p = udse_core::space::DesignSpace::paper().decode(0).unwrap();
        let plan = EvalPlan::from_jobs("t", vec![(Benchmark::Ammp, p), (Benchmark::Gcc, p)]);
        let err = oracle.run_plan(&plan).expect_err("spawn must fail");
        assert!(err.contains("cannot spawn worker"), "err: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_plan_short_circuits() {
        let oracle = ShardedOracle::new(
            SimOracle::with_trace_len(1_000),
            3,
            PathBuf::from("/nonexistent"),
            std::env::temp_dir(),
            1,
        );
        assert!(oracle.run_plan(&EvalPlan::new("empty")).unwrap().is_empty());
    }
}
