//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig_*` / `table_*` function renders one artifact of the paper's
//! evaluation as plain text (and optionally CSV next to it), driven by a
//! shared [`Context`] that trains the regression models once. The
//! `repro` binary is a thin CLI over these functions; the criterion
//! benches in `benches/` measure the speed claims (model formulation and
//! prediction cost, simulation cost). The `udse-inspect` binary (over
//! [`inspect`]) summarizes, diffs, and trace-exports the run manifests
//! `repro --manifest` writes.
//!
//! # Examples
//!
//! ```no_run
//! use udse_bench::Context;
//!
//! let ctx = Context::new(true); // quick mode
//! println!("{}", udse_bench::figures::fig1(&ctx));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod context;
pub mod csv_export;
pub mod depth_figs;
pub mod extensions;
pub mod figures;
pub mod hetero_figs;
pub mod inspect;
pub mod plot_export;
pub mod shard;

pub use context::Context;
pub use shard::{GroundTruth, ShardedOracle};
