//! Figures 5–7: pipeline depth analysis.

use udse_core::report::{fmt, format_table};
use udse_core::studies::depth::DepthValidation;

use crate::context::Context;

/// Figure 5(a): original-analysis line plot and enhanced-analysis
/// efficiency boxplots per depth, relative to the original optimum.
pub fn fig5a(ctx: &Context) -> String {
    let study = ctx.depth_study();
    let mut rows = Vec::new();
    for (i, &d) in study.depths.iter().enumerate() {
        let bp = &study.enhanced_boxplots[i];
        rows.push(vec![
            d.to_string(),
            fmt(study.original_relative[i], 3),
            fmt(bp.q1, 3),
            fmt(bp.median, 3),
            fmt(bp.q3, 3),
            fmt(bp.max, 3),
            fmt(study.bound_relative[i], 3),
            fmt(study.fraction_above_original[i] * 100.0, 1),
        ]);
    }
    format!(
        "Figure 5a: efficiency vs pipeline depth, original (line) and enhanced (boxplots)\n\
         (relative to the original bips^3/w optimum; paper: optimum 18 FO4, up to 2.1x bound)\n\n{}\n\
         original-analysis optimal depth: {} FO4; bound-architecture optimal depth: {} FO4\n",
        format_table(
            &["fo4", "orig_line", "q1", "median", "q3", "bound", "bound_rel", "%>orig_opt"],
            &rows
        ),
        study.optimal_original_depth(),
        study.optimal_bound_depth(),
    )
}

/// Figure 5(b): distribution of D-L1 cache sizes among the designs in
/// the 95th percentile of each depth's efficiency distribution.
pub fn fig5b(ctx: &Context) -> String {
    let study = ctx.depth_study();
    let sizes = [8u64, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for (i, &d) in study.depths.iter().enumerate() {
        let h = &study.dcache_top_percentile[i];
        let mut row = vec![d.to_string()];
        for &s in &sizes {
            row.push(fmt(h.fraction(s) * 100.0, 1));
        }
        row.push(h.total().to_string());
        rows.push(row);
    }
    format!(
        "Figure 5b: D-L1 size distribution among 95th-percentile designs at each depth\n\
         (percent of top designs; paper: small caches viable at shallow depths,\n\
          large caches favoured as pipelines deepen)\n\n{}",
        format_table(&["fo4", "8KB%", "16KB%", "32KB%", "64KB%", "128KB%", "n_top"], &rows)
    )
}

/// Figure 6: predicted vs simulated relative efficiency for both
/// analyses.
pub fn fig6(ctx: &Context) -> String {
    let engine = ctx.engine();
    let study = ctx.depth_study();
    let val = DepthValidation::run(ctx.oracle(), &engine, &study);
    let mut rows = Vec::new();
    for (i, &d) in val.depths.iter().enumerate() {
        rows.push(vec![
            d.to_string(),
            fmt(val.original_predicted[i], 3),
            fmt(val.original_simulated[i], 3),
            fmt(val.enhanced_predicted[i], 3),
            fmt(val.enhanced_simulated[i], 3),
        ]);
    }
    format!(
        "Figure 6: predicted vs simulated efficiency, original and enhanced analyses\n\
         (relative to each source's original optimum; paper: models pick the optimal\n\
          depth to within 3 FO4, penalties sharper in simulation)\n\n{}\n\
         model optimal depth {} FO4 vs simulated optimal depth {} FO4\n",
        format_table(&["fo4", "orig_pred", "orig_sim", "enh_pred", "enh_sim"], &rows),
        study.optimal_original_depth(),
        val.simulated_optimal_depth(),
    )
}

/// Figure 7: the decomposition behind Figure 6 — suite-average
/// performance and power, predicted vs simulated, for both analyses.
pub fn fig7(ctx: &Context) -> String {
    let engine = ctx.engine();
    let study = ctx.depth_study();
    let val = DepthValidation::run(ctx.oracle(), &engine, &study);
    let mut rows = Vec::new();
    for (i, &d) in val.depths.iter().enumerate() {
        rows.push(vec![
            d.to_string(),
            fmt(val.original_predicted_bips[i], 3),
            fmt(val.original_simulated_bips[i], 3),
            fmt(val.enhanced_predicted_bips[i], 3),
            fmt(val.enhanced_simulated_bips[i], 3),
            fmt(val.original_predicted_watts[i], 1),
            fmt(val.original_simulated_watts[i], 1),
            fmt(val.enhanced_predicted_watts[i], 1),
            fmt(val.enhanced_simulated_watts[i], 1),
        ]);
    }
    format!(
        "Figure 7: suite-average (a) performance and (b) power, predicted vs simulated\n\
         (bips and watts; 'orig' = baseline sweep, 'enh' = bound architectures)\n\n{}",
        format_table(
            &["fo4", "bips_op", "bips_os", "bips_ep", "bips_es", "w_op", "w_os", "w_ep", "w_es"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig5a_has_seven_depths() {
        let ctx = Context::new(true);
        let s = fig5a(&ctx);
        for d in [12, 15, 18, 21, 24, 27, 30] {
            assert!(s.lines().any(|l| l.trim_start().starts_with(&d.to_string())), "{d}");
        }
    }

    #[test]
    fn quick_fig5b_fractions_sum_to_100() {
        let ctx = Context::new(true);
        let s = fig5b(&ctx);
        // Parse one data row and check the percentages sum to ~100.
        let row = s.lines().find(|l| l.trim_start().starts_with("12")).unwrap();
        let cells: Vec<f64> =
            row.split_whitespace().skip(1).take(5).map(|c| c.parse().unwrap()).collect();
        let sum: f64 = cells.iter().sum();
        assert!((sum - 100.0).abs() < 1.0, "sum {sum}");
    }
}
