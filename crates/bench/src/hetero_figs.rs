//! Table 4 and Figures 8–9: multiprocessor heterogeneity analysis.

use udse_core::report::{fmt, format_table};
use udse_core::studies::heterogeneity::{
    compromise_clusters, compromise_errors, predicted_gains, scatter_data, simulated_gains,
    BenchmarkArchitectures,
};

use crate::context::Context;

/// RNG seed for the clustering restarts (fixed for reproducibility).
const CLUSTER_SEED: u64 = 64;

/// Table 4: the K = 4 compromise architectures with their member
/// benchmarks and average predicted delay/power.
pub fn table4(ctx: &Context) -> String {
    let suite = ctx.suite();
    let optima = BenchmarkArchitectures::find(&ctx.engine());
    let clusters = compromise_clusters(&suite, &optima, 4, CLUSTER_SEED);
    let mut rows = Vec::new();
    for (i, c) in clusters.iter().enumerate() {
        let p = &c.architecture;
        let members: Vec<&str> = c.members.iter().map(|b| b.name()).collect();
        rows.push(vec![
            (i + 1).to_string(),
            p.fo4().to_string(),
            p.decode_width().to_string(),
            p.gpr().to_string(),
            p.resv_fp().to_string(),
            p.il1_kb().to_string(),
            p.dl1_kb().to_string(),
            fmt(p.l2_kb() as f64 / 1024.0, 2),
            fmt(c.avg_delay, 2),
            fmt(c.avg_power, 1),
            members.join("+"),
        ]);
    }
    // Validate the compromises by simulation (and feed the
    // `heterogeneity.compromise.*` quality records the manifest gates).
    let (bips_err, watts_err) = compromise_errors(ctx.oracle(), &suite, &clusters);
    format!(
        "Table 4: K=4 compromise architectures\n\
         (paper: four clusters capturing all depth-width combinations)\n\n{}\n\
         simulated compromise error (mean |rel|): bips {:.1}%, watts {:.1}%\n",
        format_table(
            &[
                "cluster",
                "depth",
                "width",
                "reg",
                "resv",
                "I$KB",
                "D$KB",
                "L2MB",
                "avg_delay",
                "avg_power",
                "benchmarks"
            ],
            &rows
        ),
        bips_err * 100.0,
        watts_err * 100.0,
    )
}

/// Figure 8: delay/power of per-benchmark optima (radial points) and the
/// K=4 compromises (circles).
pub fn fig8(ctx: &Context) -> String {
    let suite = ctx.suite();
    let optima = BenchmarkArchitectures::find(&ctx.engine());
    let sd = scatter_data(&suite, &optima, 4, CLUSTER_SEED);
    let mut rows = Vec::new();
    for (b, m) in &sd.optima_points {
        rows.push(vec![
            b.name().to_string(),
            "optimum".to_string(),
            fmt(m.delay_seconds(), 3),
            fmt(m.watts, 1),
        ]);
    }
    for (i, (arch, members)) in sd.compromise_points.iter().enumerate() {
        for (b, m) in members {
            rows.push(vec![
                b.name().to_string(),
                format!("compromise{} ({}fo4/w{})", i + 1, arch.fo4(), arch.decode_width()),
                fmt(m.delay_seconds(), 3),
                fmt(m.watts, 1),
            ]);
        }
    }
    format!(
        "Figure 8: delay and power of benchmark optima vs K=4 compromises\n\
         (paper: spatial locality of centroid and members implies modest compromise penalties)\n\n{}",
        format_table(&["bench", "running_on", "delay_s", "power_w"], &rows)
    )
}

/// Figure 9: predicted (a) and simulated (b) efficiency gains versus
/// cluster count.
pub fn fig9(ctx: &Context) -> String {
    let suite = ctx.suite();
    let optima = BenchmarkArchitectures::find(&ctx.engine());
    let gp = predicted_gains(&suite, &optima, CLUSTER_SEED);
    let gs = simulated_gains(ctx.oracle(), &suite, &optima, CLUSTER_SEED);
    let (ap, asim) = (gp.averages(), gs.averages());
    let mut rows = Vec::new();
    for (i, &k) in gp.k_values.iter().enumerate() {
        let mut row = vec![k.to_string(), fmt(ap[i], 2), fmt(asim[i], 2)];
        // Representative per-benchmark columns (mesa gains most, mcf is the
        // early sacrifice in the paper).
        row.push(fmt(gp.gains[i][udse_trace::Benchmark::Mesa.id() as usize], 2));
        row.push(fmt(gp.gains[i][udse_trace::Benchmark::Mcf.id() as usize], 2));
        rows.push(row);
    }
    format!(
        "Figure 9: bips^3/w gains vs degree of heterogeneity (cluster count)\n\
         (cluster 0 = POWER4-like baseline, 1 = homogeneous K-means core,\n\
          9 = per-benchmark optimal cores = theoretical upper bound;\n\
          paper: 4 cores reach ~92%% of the bound in regression, ~88%% in simulation)\n\n{}\n\
         predicted upper bound {:.2}x (K=4 reaches {:.0}%); simulated upper bound {:.2}x (K=4 reaches {:.0}%)\n",
        format_table(&["K", "avg_pred", "avg_sim", "mesa_pred", "mcf_pred"], &rows),
        gp.upper_bound(),
        100.0 * ap[4] / gp.upper_bound(),
        gs.upper_bound(),
        100.0 * asim[4] / gs.upper_bound(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table4_has_four_clusters() {
        let ctx = Context::new(true);
        let s = table4(&ctx);
        for c in 1..=4 {
            assert!(s.lines().any(|l| l.trim_start().starts_with(&c.to_string())));
        }
        assert!(s.contains("simulated compromise error"), "table4 reports compromise error");
        let quality = udse_obs::quality::global().snapshot();
        assert!(
            quality.iter().any(|r| r.key == "heterogeneity.compromise.bips"),
            "table4 records compromise quality telemetry"
        );
    }

    #[test]
    fn quick_fig9_has_ten_k_rows() {
        let ctx = Context::new(true);
        let s = fig9(&ctx);
        let data_rows = s
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with(|c: char| c.is_ascii_digit()) && t.contains('.')
            })
            .count();
        assert!(data_rows >= 10, "expected >= 10 K rows, got {data_rows}");
    }
}
