use rand::Rng;

/// A pool of static branch sites with per-site taken probabilities.
///
/// Each site models one static conditional branch in the program. Sites
/// are either *biased* (taken probability near 0 or 1, within the
/// profile's `branch_entropy` margin — typical loop and guard branches that
/// even a 1-bit predictor captures) or *hard* (data-dependent direction,
/// taken probability near 0.5, which no history-based predictor can
/// learn). Dynamic branches pick sites with a skewed popularity so a few
/// hot loops dominate, as in real programs.
///
/// # Examples
///
/// ```
/// use udse_trace::BranchPool;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let pool = BranchPool::new(64, 0.05, 0.1, &mut rng);
/// assert_eq!(pool.sites(), 64);
/// let (site, taken) = pool.next_branch(&mut rng);
/// assert!(site < 64);
/// let _ = taken;
/// ```
#[derive(Debug, Clone)]
pub struct BranchPool {
    taken_prob: Vec<f64>,
}

impl BranchPool {
    /// Builds a pool of `sites` branches.
    ///
    /// `entropy` is the bias margin in `(0, 0.5]`; `hard_frac` the fraction
    /// of unpredictable sites. The pool layout is drawn from `rng`, making
    /// it deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0` or parameters are out of range.
    pub fn new<R: Rng>(sites: usize, entropy: f64, hard_frac: f64, rng: &mut R) -> Self {
        assert!(sites > 0, "need at least one branch site");
        assert!(entropy > 0.0 && entropy <= 0.5, "entropy must be in (0, 0.5]");
        assert!((0.0..=1.0).contains(&hard_frac), "hard_frac must be in [0, 1]");
        let taken_prob = (0..sites)
            .map(|_| {
                if rng.gen::<f64>() < hard_frac {
                    // Data-dependent branch: close to a coin flip.
                    0.35 + 0.30 * rng.gen::<f64>()
                } else {
                    // Biased branch; loops lean taken (~70 % of sites).
                    let margin = entropy * rng.gen::<f64>();
                    if rng.gen::<f64>() < 0.7 {
                        1.0 - margin
                    } else {
                        margin
                    }
                }
            })
            .collect();
        BranchPool { taken_prob }
    }

    /// Number of static sites.
    pub fn sites(&self) -> usize {
        self.taken_prob.len()
    }

    /// Taken probability of a given site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn taken_prob(&self, site: usize) -> f64 {
        self.taken_prob[site]
    }

    /// Draws the next dynamic branch: a `(site, taken)` pair. Site
    /// popularity is quadratically skewed toward low indices so a handful
    /// of hot loops dominate execution.
    pub fn next_branch<R: Rng>(&self, rng: &mut R) -> (u32, bool) {
        let u: f64 = rng.gen();
        let site = ((u * u) * self.taken_prob.len() as f64) as usize;
        let site = site.min(self.taken_prob.len() - 1);
        let taken = rng.gen::<f64>() < self.taken_prob[site];
        (site as u32, taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = BranchPool::new(1_000, 0.1, 0.2, &mut rng);
        for s in 0..pool.sites() {
            let p = pool.taken_prob(s);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn low_entropy_pools_are_more_predictable() {
        // A static predictor that always guesses each site's majority
        // direction should do better on a low-entropy pool.
        let accuracy = |entropy: f64, hard: f64| {
            let mut rng = StdRng::seed_from_u64(7);
            let pool = BranchPool::new(256, entropy, hard, &mut rng);
            let mut correct = 0;
            let n = 20_000;
            for _ in 0..n {
                let (site, taken) = pool.next_branch(&mut rng);
                let majority = pool.taken_prob(site as usize) >= 0.5;
                if taken == majority {
                    correct += 1;
                }
            }
            correct as f64 / n as f64
        };
        assert!(accuracy(0.02, 0.01) > accuracy(0.3, 0.3) + 0.05);
    }

    #[test]
    fn hot_sites_dominate() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = BranchPool::new(1_000, 0.1, 0.1, &mut rng);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            let (site, _) = pool.next_branch(&mut rng);
            if (site as usize) < 250 {
                low += 1;
            }
        }
        // Quadratic skew: P(site < 250/1000) = sqrt(0.25) = 0.5.
        assert!(low as f64 / n as f64 > 0.45);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pool = BranchPool::new(64, 0.1, 0.1, &mut rng);
            (0..50).map(|_| pool.next_branch(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(mk(5), mk(5));
    }

    #[test]
    #[should_panic(expected = "branch site")]
    fn zero_sites_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = BranchPool::new(0, 0.1, 0.1, &mut rng);
    }
}
