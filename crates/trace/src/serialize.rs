//! Binary serialization of traces.
//!
//! Trace-driven methodologies conventionally store traces on disk and
//! replay them across many simulations; this module gives [`Trace`] a
//! compact little-endian binary format (18 bytes per instruction plus a
//! 17-byte header) with explicit versioning.
//!
//! ```text
//! magic  "UDSETRC1"          8 bytes
//! bench  Benchmark id        1 byte
//! count  instruction count   8 bytes (LE)
//! insts  count records:
//!        op                  1 byte
//!        src1_dist           2 bytes (LE)
//!        src2_dist           2 bytes (LE)
//!        data_block          4 bytes (LE)
//!        code_block          4 bytes (LE)
//!        branch_site         4 bytes (LE)
//!        taken               1 byte
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::trace_data::{OpClass, Trace, TraceInst};
use crate::Benchmark;

const MAGIC: &[u8; 8] = b"UDSETRC1";

/// Errors from reading a serialized trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// Unknown benchmark id in the header.
    UnknownBenchmark(u8),
    /// Unknown opcode byte in a record.
    UnknownOpcode(u8),
    /// The header promises zero instructions.
    EmptyTrace,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => write!(f, "not a udse trace (bad magic)"),
            TraceIoError::UnknownBenchmark(b) => write!(f, "unknown benchmark id {b}"),
            TraceIoError::UnknownOpcode(op) => write!(f, "unknown opcode byte {op}"),
            TraceIoError::EmptyTrace => write!(f, "trace header declares zero instructions"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn op_to_byte(op: OpClass) -> u8 {
    match op {
        OpClass::FixedPoint => 0,
        OpClass::FloatingPoint => 1,
        OpClass::Load => 2,
        OpClass::Store => 3,
        OpClass::Branch => 4,
    }
}

fn op_from_byte(b: u8) -> Result<OpClass, TraceIoError> {
    Ok(match b {
        0 => OpClass::FixedPoint,
        1 => OpClass::FloatingPoint,
        2 => OpClass::Load,
        3 => OpClass::Store,
        4 => OpClass::Branch,
        other => return Err(TraceIoError::UnknownOpcode(other)),
    })
}

impl Trace {
    /// Serializes the trace to a writer. Pass `&mut writer` to retain
    /// ownership of the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[self.benchmark().id() as u8])?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        let mut rec = [0u8; 18];
        for i in self.instructions() {
            rec[0] = op_to_byte(i.op);
            rec[1..3].copy_from_slice(&i.src1_dist.to_le_bytes());
            rec[3..5].copy_from_slice(&i.src2_dist.to_le_bytes());
            rec[5..9].copy_from_slice(&i.data_block.to_le_bytes());
            rec[9..13].copy_from_slice(&i.code_block.to_le_bytes());
            rec[13..17].copy_from_slice(&i.branch_site.to_le_bytes());
            rec[17] = i.taken as u8;
            w.write_all(&rec)?;
        }
        Ok(())
    }

    /// Deserializes a trace from a reader. Pass `&mut reader` to retain
    /// ownership of the reader.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on malformed input or I/O failure.
    pub fn read_from<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let mut header = [0u8; 9];
        r.read_exact(&mut header)?;
        let bench_id = header[0];
        let benchmark = *Benchmark::ALL
            .get(bench_id as usize)
            .ok_or(TraceIoError::UnknownBenchmark(bench_id))?;
        let count = u64::from_le_bytes(header[1..9].try_into().expect("8 bytes"));
        if count == 0 {
            return Err(TraceIoError::EmptyTrace);
        }
        let mut insts = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut rec = [0u8; 18];
        for _ in 0..count {
            r.read_exact(&mut rec)?;
            insts.push(TraceInst {
                op: op_from_byte(rec[0])?,
                src1_dist: u16::from_le_bytes(rec[1..3].try_into().expect("2 bytes")),
                src2_dist: u16::from_le_bytes(rec[3..5].try_into().expect("2 bytes")),
                data_block: u32::from_le_bytes(rec[5..9].try_into().expect("4 bytes")),
                code_block: u32::from_le_bytes(rec[9..13].try_into().expect("4 bytes")),
                branch_site: u32::from_le_bytes(rec[13..17].try_into().expect("4 bytes")),
                taken: rec[17] != 0,
            });
        }
        Ok(Trace::from_instructions(benchmark, insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_trace() {
        let t = Trace::generate(Benchmark::Mcf, 5_000, 9);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 17 + 18 * 5_000);
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&b"NOTATRACE........."[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unknown_benchmark_rejected() {
        let t = Trace::generate(Benchmark::Gzip, 10, 1);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[8] = 200; // corrupt benchmark id
        assert!(matches!(
            Trace::read_from(buf.as_slice()),
            Err(TraceIoError::UnknownBenchmark(200))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let t = Trace::generate(Benchmark::Gzip, 10, 1);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[17] = 9; // corrupt first record's opcode
        assert!(matches!(Trace::read_from(buf.as_slice()), Err(TraceIoError::UnknownOpcode(9))));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let t = Trace::generate(Benchmark::Gzip, 10, 1);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(Trace::read_from(buf.as_slice()), Err(TraceIoError::Io(_))));
    }

    #[test]
    fn zero_count_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(Trace::read_from(buf.as_slice()), Err(TraceIoError::EmptyTrace)));
    }

    #[test]
    fn file_roundtrip() {
        let t = Trace::generate(Benchmark::Ammp, 1_000, 4);
        let path = std::env::temp_dir().join("udse_trace_test.bin");
        t.write_to(std::fs::File::create(&path).unwrap()).unwrap();
        let back = Trace::read_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_file(&path);
    }
}
