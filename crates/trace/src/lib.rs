//! Synthetic benchmark workloads for the design space studies.
//!
//! The paper drives its Turandot simulations with sampled PowerPC traces of
//! SPECjbb and eight SPEC2000 benchmarks. Those traces are proprietary, so
//! this crate substitutes *statistical synthetic traces* — the same
//! technique the paper itself cites for workload reduction (Eeckhout \[4],
//! Nussbaum \[17]): each benchmark is described by a [`WorkloadProfile`]
//! capturing
//!
//! - instruction mix (fixed-point / floating-point / load / store / branch),
//! - dependency-distance distributions (instruction-level parallelism),
//! - a static branch pool with per-branch taken bias (predictability),
//! - data reuse-distance distribution and footprint (cache locality),
//! - code reuse-distance distribution and footprint (I-cache locality),
//!
//! and a deterministic [`Trace`] of concrete instructions is generated from
//! the profile. The profiles are calibrated so the paper's qualitative
//! contrasts hold (e.g. `mcf` memory-bound with a large L2 appetite, `gzip`
//! compute-bound with a small footprint, `ammp` ILP-rich).
//!
//! # Examples
//!
//! ```
//! use udse_trace::{Benchmark, Trace};
//!
//! let trace = Trace::generate(Benchmark::Mcf, 1_000, 7);
//! assert_eq!(trace.len(), 1_000);
//! // Generation is deterministic for a given (benchmark, length, seed).
//! let again = Trace::generate(Benchmark::Mcf, 1_000, 7);
//! assert_eq!(trace.instructions()[0], again.instructions()[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod branches;
mod characterize;
mod generator;
mod locality;
mod profile;
mod serialize;
mod trace_data;

pub use benchmark::Benchmark;
pub use branches::BranchPool;
pub use characterize::{characterize, CharacterReport, Deviation};
pub use generator::TraceGenerator;
pub use locality::ReuseStream;
pub use profile::{InstructionMix, WorkloadProfile};
pub use serialize::TraceIoError;
pub use trace_data::{OpClass, Trace, TraceInst, TraceStats};
