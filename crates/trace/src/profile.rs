use crate::Benchmark;

/// Fractions of each instruction class in a workload; must sum to 1.
///
/// # Examples
///
/// ```
/// use udse_trace::InstructionMix;
///
/// let mix = InstructionMix::new(0.40, 0.10, 0.25, 0.10, 0.15);
/// assert!((mix.total() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Fixed-point ALU operations.
    pub fixed: f64,
    /// Floating-point operations.
    pub float: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
}

impl InstructionMix {
    /// Creates a mix, validating that fractions are non-negative and sum
    /// to 1 (within 1e-9).
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum differs from 1.
    pub fn new(fixed: f64, float: f64, load: f64, store: f64, branch: f64) -> Self {
        let mix = InstructionMix { fixed, float, load, store, branch };
        for f in [fixed, float, load, store, branch] {
            assert!(f >= 0.0, "instruction mix fractions must be non-negative");
        }
        assert!((mix.total() - 1.0).abs() < 1e-9, "instruction mix must sum to 1");
        mix
    }

    /// Sum of all fractions (1.0 for a valid mix).
    pub fn total(&self) -> f64 {
        self.fixed + self.float + self.load + self.store + self.branch
    }

    /// Cumulative thresholds for sampling: `[fixed, +float, +load, +store]`
    /// (a uniform draw above the last threshold is a branch).
    pub(crate) fn thresholds(&self) -> [f64; 4] {
        let a = self.fixed;
        let b = a + self.float;
        let c = b + self.load;
        let d = c + self.store;
        [a, b, c, d]
    }
}

/// The statistical description of one benchmark's execution behaviour.
///
/// A profile plus a seed deterministically generates a synthetic trace; the
/// fields are the knobs that make the simulator's response surface
/// benchmark-specific. See the crate-level docs for the substitution
/// rationale relative to the paper's real PowerPC traces.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Instruction class fractions.
    pub mix: InstructionMix,
    /// Mean register dependency distance, in instructions. Larger values
    /// mean more instruction-level parallelism (consumers sit farther from
    /// producers), so wide pipelines and large register files pay off.
    pub dep_mean: f64,
    /// Fraction of instructions carrying a second register source operand.
    pub second_src_frac: f64,
    /// Number of static branch sites. BHT aliasing becomes visible when
    /// this approaches the predictor's table size.
    pub branch_sites: usize,
    /// Per-branch bias spread in `(0, 0.5]`: the taken-probability of each
    /// static branch is drawn near 0 or 1 within this margin. Small values
    /// give strongly biased, predictable branches; 0.5 gives coin flips.
    pub branch_entropy: f64,
    /// Fraction of branch sites that are effectively random (data-dependent
    /// direction), regardless of `branch_entropy`.
    pub hard_branch_frac: f64,
    /// Data footprint in 128-byte cache blocks.
    pub data_footprint: u64,
    /// Bounded-Pareto exponent of the data reuse-distance distribution.
    /// The probability that a reuse reaches back more than `d` distinct
    /// blocks falls off as `d^-alpha`: large alpha = tight locality.
    pub data_alpha: f64,
    /// Fraction of data accesses that touch a never-seen (cold/streaming)
    /// block.
    pub data_cold_frac: f64,
    /// Code footprint in 128-byte cache blocks.
    pub code_footprint: u64,
    /// Bounded-Pareto exponent for code reuse distances.
    pub code_alpha: f64,
    /// Fraction of taken-branch targets that jump to a never-seen code
    /// block.
    pub code_cold_frac: f64,
    /// Fraction of loads that depend on a recent load's value (pointer
    /// chasing), serializing memory accesses as in `mcf`.
    pub pointer_chase_frac: f64,
    /// Optional secondary data working set `(fraction, lo, hi)`: with the
    /// given probability a data access reaches log-uniformly into stack
    /// distances `[lo, hi]` blocks. Models a large in-memory structure
    /// (graph, grid, heap) whose reuse scale spans the L2 sizing range.
    pub data_far_band: Option<(f64, u64, u64)>,
}

impl WorkloadProfile {
    /// Returns the calibrated profile for `benchmark`.
    ///
    /// Calibration targets the paper's qualitative contrasts, documented in
    /// `DESIGN.md` and verified by the characterization tests in this
    /// crate and `udse-sim`.
    pub fn for_benchmark(benchmark: Benchmark) -> Self {
        match benchmark {
            // ILP-rich FP molecular dynamics. Long dependency distances,
            // predictable loop branches, multi-megabyte working set with
            // moderate locality: big register files and caches pay off.
            Benchmark::Ammp => WorkloadProfile {
                mix: InstructionMix::new(0.30, 0.28, 0.24, 0.10, 0.08),
                dep_mean: 17.0,
                second_src_frac: 0.55,
                branch_sites: 128,
                branch_entropy: 0.04,
                hard_branch_frac: 0.02,
                data_footprint: 16_384, // 2 MB
                data_alpha: 0.50,
                data_cold_frac: 0.001,
                code_footprint: 160,
                code_alpha: 1.5,
                code_cold_frac: 0.0005,
                pointer_chase_frac: 0.02,
                data_far_band: Some((0.10, 128, 4_096)),
            },
            // Dense-loop FP PDE solver: very high ILP, tiny working set per
            // sweep, extremely predictable branches. Small caches suffice.
            Benchmark::Applu => WorkloadProfile {
                mix: InstructionMix::new(0.26, 0.36, 0.24, 0.10, 0.04),
                dep_mean: 18.0,
                second_src_frac: 0.60,
                branch_sites: 64,
                branch_entropy: 0.02,
                hard_branch_frac: 0.01,
                data_footprint: 512, // 64 KB
                data_alpha: 1.6,
                data_cold_frac: 0.002,
                code_footprint: 96,
                code_alpha: 1.8,
                code_cold_frac: 0.0003,
                pointer_chase_frac: 0.0,
                data_far_band: None,
            },
            // Seismic FP code: good ILP, modest working set, slightly more
            // code than the dense solvers.
            Benchmark::Equake => WorkloadProfile {
                mix: InstructionMix::new(0.28, 0.30, 0.26, 0.09, 0.07),
                dep_mean: 13.0,
                second_src_frac: 0.55,
                branch_sites: 160,
                branch_entropy: 0.05,
                hard_branch_frac: 0.03,
                data_footprint: 2_048, // 256 KB
                data_alpha: 1.0,
                data_cold_frac: 0.004,
                code_footprint: 400,
                code_alpha: 1.2,
                code_cold_frac: 0.001,
                pointer_chase_frac: 0.01,
                data_far_band: Some((0.06, 64, 1_024)),
            },
            // Compiler: branchy integer code with limited ILP, large code
            // footprint, moderate data appetite.
            Benchmark::Gcc => WorkloadProfile {
                mix: InstructionMix::new(0.42, 0.01, 0.26, 0.13, 0.18),
                dep_mean: 3.0,
                second_src_frac: 0.40,
                branch_sites: 3_072,
                branch_entropy: 0.12,
                hard_branch_frac: 0.07,
                data_footprint: 8_192, // 1 MB
                data_alpha: 0.80,
                data_cold_frac: 0.006,
                code_footprint: 1_024, // 128 KB
                code_alpha: 0.9,
                code_cold_frac: 0.002,
                pointer_chase_frac: 0.05,
                data_far_band: Some((0.05, 128, 2_048)),
            },
            // Compression: serial integer dependency chains, tiny working
            // set — the compute-bound extreme of the suite.
            Benchmark::Gzip => WorkloadProfile {
                mix: InstructionMix::new(0.47, 0.00, 0.26, 0.12, 0.15),
                dep_mean: 2.0,
                second_src_frac: 0.42,
                branch_sites: 512,
                branch_entropy: 0.12,
                hard_branch_frac: 0.06,
                data_footprint: 1_024, // 128 KB
                data_alpha: 1.4,
                data_cold_frac: 0.003,
                code_footprint: 64,
                code_alpha: 1.8,
                code_cold_frac: 0.0002,
                pointer_chase_frac: 0.02,
                data_far_band: None,
            },
            // Java server benchmark: decent ILP, large data working set,
            // sizeable code footprint — favours wide cores with big D-side.
            Benchmark::Jbb => WorkloadProfile {
                mix: InstructionMix::new(0.36, 0.03, 0.29, 0.14, 0.18),
                dep_mean: 11.0,
                second_src_frac: 0.45,
                branch_sites: 2_048,
                branch_entropy: 0.09,
                hard_branch_frac: 0.04,
                data_footprint: 16_384, // 2 MB
                data_alpha: 0.85,
                data_cold_frac: 0.005,
                code_footprint: 1_536,
                code_alpha: 1.0,
                code_cold_frac: 0.002,
                pointer_chase_frac: 0.06,
                data_far_band: Some((0.15, 256, 8_192)),
            },
            // Combinatorial optimization over a huge graph: the
            // memory-bound, pointer-chasing extreme. Reuse distances are
            // heavy-tailed so only megabytes of L2 cut the miss rate.
            Benchmark::Mcf => WorkloadProfile {
                mix: InstructionMix::new(0.36, 0.01, 0.32, 0.09, 0.22),
                dep_mean: 2.0,
                second_src_frac: 0.35,
                branch_sites: 256,
                branch_entropy: 0.14,
                hard_branch_frac: 0.08,
                data_footprint: 32_768, // 4 MB
                data_alpha: 0.22,
                data_cold_frac: 0.004,
                code_footprint: 48,
                code_alpha: 1.8,
                code_cold_frac: 0.0002,
                pointer_chase_frac: 0.38,
                data_far_band: Some((0.35, 512, 32_768)),
            },
            // 3-D graphics library: high IPC, predictable control flow, but
            // the largest code footprint of the suite.
            Benchmark::Mesa => WorkloadProfile {
                mix: InstructionMix::new(0.36, 0.14, 0.26, 0.12, 0.12),
                dep_mean: 14.0,
                second_src_frac: 0.50,
                branch_sites: 1_024,
                branch_entropy: 0.06,
                hard_branch_frac: 0.02,
                data_footprint: 1_536, // 192 KB
                data_alpha: 1.2,
                data_cold_frac: 0.003,
                code_footprint: 2_048, // 256 KB
                code_alpha: 0.4,
                code_cold_frac: 0.003,
                pointer_chase_frac: 0.01,
                data_far_band: None,
            },
            // Place-and-route: moderate ILP with a real cache appetite on
            // both L1-D and L2.
            Benchmark::Twolf => WorkloadProfile {
                mix: InstructionMix::new(0.40, 0.04, 0.27, 0.11, 0.18),
                dep_mean: 7.0,
                second_src_frac: 0.45,
                branch_sites: 1_024,
                branch_entropy: 0.11,
                hard_branch_frac: 0.05,
                data_footprint: 20_480, // 2.5 MB
                data_alpha: 0.60,
                data_cold_frac: 0.004,
                code_footprint: 640,
                code_alpha: 1.1,
                code_cold_frac: 0.001,
                pointer_chase_frac: 0.08,
                data_far_band: Some((0.20, 128, 16_384)),
            },
        }
    }

    /// Validates internal consistency (fractions in range, footprints
    /// non-zero). Called by the generator; exposed for tests.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of its documented range.
    pub fn validate(&self) {
        assert!((self.mix.total() - 1.0).abs() < 1e-9, "mix must sum to 1");
        assert!(self.dep_mean >= 1.0, "dep_mean must be >= 1");
        assert!((0.0..=1.0).contains(&self.second_src_frac));
        assert!(self.branch_sites > 0, "need at least one branch site");
        assert!(self.branch_entropy > 0.0 && self.branch_entropy <= 0.5);
        assert!((0.0..=1.0).contains(&self.hard_branch_frac));
        assert!(self.data_footprint > 0 && self.code_footprint > 0);
        assert!(self.data_alpha > 0.0 && self.code_alpha > 0.0);
        assert!((0.0..=1.0).contains(&self.data_cold_frac));
        assert!((0.0..=1.0).contains(&self.code_cold_frac));
        assert!((0.0..=1.0).contains(&self.pointer_chase_frac));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            b.profile().validate();
        }
    }

    #[test]
    fn mcf_is_the_memory_bound_extreme() {
        let mcf = Benchmark::Mcf.profile();
        for b in Benchmark::ALL {
            if b != Benchmark::Mcf {
                let p = b.profile();
                assert!(mcf.data_footprint >= p.data_footprint);
                assert!(mcf.data_alpha <= p.data_alpha);
                assert!(mcf.dep_mean <= p.dep_mean);
            }
        }
    }

    #[test]
    fn fp_benchmarks_have_fp_instructions() {
        for b in [Benchmark::Ammp, Benchmark::Applu, Benchmark::Equake] {
            assert!(b.profile().mix.float > 0.25, "{b} should be FP-heavy");
        }
        assert_eq!(Benchmark::Gzip.profile().mix.float, 0.0);
    }

    #[test]
    fn mesa_has_largest_code_footprint() {
        let mesa = Benchmark::Mesa.profile().code_footprint;
        for b in Benchmark::ALL {
            assert!(mesa >= b.profile().code_footprint);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_mix_panics() {
        let _ = InstructionMix::new(0.5, 0.5, 0.5, 0.0, 0.0);
    }

    #[test]
    fn thresholds_are_monotone() {
        let mix = InstructionMix::new(0.4, 0.1, 0.25, 0.1, 0.15);
        let t = mix.thresholds();
        assert!(t[0] <= t[1] && t[1] <= t[2] && t[2] <= t[3]);
        assert!(t[3] <= 1.0);
    }
}
