use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::branches::BranchPool;
use crate::locality::ReuseStream;
use crate::profile::WorkloadProfile;
use crate::trace_data::{OpClass, TraceInst};
use crate::Benchmark;

/// Maximum dependency distance recorded; anything farther than the largest
/// possible instruction window behaves like an independent instruction.
const MAX_DEP_DIST: u16 = 1024;

/// Instructions per 128-byte cache block (4-byte fixed-width encoding).
const INSTS_PER_BLOCK: u64 = 32;

/// Streaming generator of synthetic instructions for one benchmark.
///
/// Wraps the benchmark's [`WorkloadProfile`] together with the stateful
/// sub-generators (branch pool, data/code reuse streams, pointer-chase
/// tracking) and produces one [`TraceInst`] per call. [`crate::Trace`]
/// is the batch convenience wrapper around this type.
///
/// # Examples
///
/// ```
/// use udse_trace::{Benchmark, TraceGenerator};
///
/// let mut gen = TraceGenerator::new(Benchmark::Ammp, 42);
/// let inst = gen.next_inst();
/// let _ = inst.op;
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    branches: BranchPool,
    data: ReuseStream,
    code: ReuseStream,
    cur_code_block: u64,
    code_off: u64,
    pending_jump: bool,
    since_last_load: u16,
}

impl TraceGenerator {
    /// Creates a generator for `benchmark` with the given `seed`.
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        Self::with_profile(benchmark.profile(), benchmark.id() ^ seed.rotate_left(17))
    }

    /// Creates a generator from an explicit profile (custom workloads).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn with_profile(profile: WorkloadProfile, seed: u64) -> Self {
        profile.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let branches = BranchPool::new(
            profile.branch_sites,
            profile.branch_entropy,
            profile.hard_branch_frac,
            &mut rng,
        );
        let mut data = ReuseStream::stationary(
            profile.data_footprint,
            profile.data_alpha,
            profile.data_cold_frac,
        );
        if let Some((frac, lo, hi)) = profile.data_far_band {
            data = data.with_far_band(frac, lo, hi);
        }
        let mut code = ReuseStream::stationary(
            profile.code_footprint,
            profile.code_alpha,
            profile.code_cold_frac,
        );
        let cur_code_block = 0;
        code.touch(cur_code_block);
        TraceGenerator {
            profile,
            rng,
            branches,
            data,
            code,
            cur_code_block,
            code_off: 0,
            pending_jump: false,
            since_last_load: MAX_DEP_DIST,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Produces the next synthetic instruction.
    pub fn next_inst(&mut self) -> TraceInst {
        // --- control flow / instruction fetch ---
        if self.pending_jump {
            self.cur_code_block = self.code.next_address(&mut self.rng);
            self.code_off = 0;
            self.pending_jump = false;
        } else {
            self.code_off += 1;
            if self.code_off >= INSTS_PER_BLOCK {
                // Sequential fall-through into the next code block.
                self.cur_code_block = self.code.sequential_next(self.cur_code_block);
                self.code_off = 0;
            }
        }

        // --- instruction class ---
        let t = self.profile.mix.thresholds();
        let u: f64 = self.rng.gen();
        let op = if u < t[0] {
            OpClass::FixedPoint
        } else if u < t[1] {
            OpClass::FloatingPoint
        } else if u < t[2] {
            OpClass::Load
        } else if u < t[3] {
            OpClass::Store
        } else {
            OpClass::Branch
        };

        // --- register dependencies ---
        let mut src1_dist = if self.rng.gen::<f64>() < 0.90 { self.dep_distance() } else { 0 };
        let src2_dist = if self.rng.gen::<f64>() < self.profile.second_src_frac {
            self.dep_distance()
        } else {
            0
        };
        // Pointer chasing: the load's address depends on the value loaded by
        // the most recent load, serializing the memory stream.
        if op == OpClass::Load
            && self.since_last_load < MAX_DEP_DIST
            && self.rng.gen::<f64>() < self.profile.pointer_chase_frac
        {
            src1_dist = self.since_last_load.max(1);
        }

        // --- memory and branch behaviour ---
        let data_block = if matches!(op, OpClass::Load | OpClass::Store) {
            self.data.next_address(&mut self.rng) as u32
        } else {
            0
        };
        let (branch_site, taken) = if op == OpClass::Branch {
            let (site, taken) = self.branches.next_branch(&mut self.rng);
            self.pending_jump = taken;
            (site, taken)
        } else {
            (0, false)
        };

        // --- bookkeeping ---
        self.since_last_load = self.since_last_load.saturating_add(1);
        if op == OpClass::Load {
            self.since_last_load = 1;
        }

        TraceInst {
            op,
            src1_dist,
            src2_dist,
            data_block,
            code_block: self.cur_code_block as u32,
            branch_site,
            taken,
        }
    }

    /// Samples a dependency distance: `1 + Geometric(1/dep_mean)`, capped.
    fn dep_distance(&mut self) -> u16 {
        let p = 1.0 / self.profile.dep_mean;
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        // Inverse CDF of the geometric distribution (trials to first
        // success), shifted so the minimum distance is 1.
        let d = 1.0 + (u.ln() / (1.0 - p).max(1e-12).ln()).floor();
        d.clamp(1.0, MAX_DEP_DIST as f64) as u16
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        Some(self.next_inst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterator_yields_instructions() {
        let gen = TraceGenerator::new(Benchmark::Twolf, 1);
        let v: Vec<TraceInst> = gen.take(100).collect();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn dep_distance_mean_tracks_profile() {
        let mut gen = TraceGenerator::new(Benchmark::Ammp, 2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| gen.dep_distance() as f64).sum::<f64>() / n as f64;
        let target = Benchmark::Ammp.profile().dep_mean;
        assert!((mean - target).abs() / target < 0.1, "mean {mean} vs target {target}");
    }

    #[test]
    fn loads_have_data_blocks_others_do_not() {
        let mut gen = TraceGenerator::new(Benchmark::Jbb, 3);
        let mut saw_load_block = false;
        for _ in 0..5_000 {
            let i = gen.next_inst();
            match i.op {
                OpClass::Load | OpClass::Store => {
                    saw_load_block |= i.data_block > 0;
                }
                _ => assert_eq!(i.data_block, 0),
            }
        }
        assert!(saw_load_block);
    }

    #[test]
    fn taken_branches_change_code_block() {
        let mut gen = TraceGenerator::new(Benchmark::Gcc, 4);
        let mut jumps = 0;
        let mut switches = 0;
        let mut prev_block = None;
        let mut prev_taken = false;
        for _ in 0..20_000 {
            let i = gen.next_inst();
            if prev_taken {
                jumps += 1;
                if prev_block != Some(i.code_block) {
                    switches += 1;
                }
            }
            prev_block = Some(i.code_block);
            prev_taken = i.op == OpClass::Branch && i.taken;
        }
        assert!(jumps > 100);
        // A visible share of taken branches land on a different code block;
        // hot loops that re-enter the current block dominate, as in real
        // integer code where loop bodies fit one 128-byte fetch block.
        let switch_rate = switches as f64 / jumps as f64;
        assert!(switch_rate > 0.1, "switch rate {switch_rate}");
    }

    #[test]
    fn pointer_chasing_serializes_mcf_loads() {
        // mcf should have many loads depending on the immediately preceding
        // load; applu (no chasing) should not.
        let chase_frac = |b: Benchmark| {
            let mut gen = TraceGenerator::new(b, 5);
            let mut loads = 0;
            let mut chases = 0;
            let mut since_load = u16::MAX;
            for _ in 0..30_000 {
                let i = gen.next_inst();
                if i.op == OpClass::Load {
                    loads += 1;
                    if since_load != u16::MAX && i.src1_dist == since_load {
                        chases += 1;
                    }
                    since_load = 1;
                } else {
                    since_load = since_load.saturating_add(1);
                }
            }
            chases as f64 / loads as f64
        };
        assert!(chase_frac(Benchmark::Mcf) > chase_frac(Benchmark::Applu) + 0.1);
    }

    #[test]
    fn custom_profile_is_respected() {
        let mut profile = Benchmark::Gzip.profile();
        profile.mix = crate::InstructionMix::new(1.0, 0.0, 0.0, 0.0, 0.0);
        let mut gen = TraceGenerator::with_profile(profile, 9);
        for _ in 0..100 {
            assert_eq!(gen.next_inst().op, OpClass::FixedPoint);
        }
    }
}
