use std::fmt;

use crate::generator::TraceGenerator;
use crate::Benchmark;

/// Instruction classes modeled by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Fixed-point ALU operation (1-cycle latency).
    FixedPoint,
    /// Floating-point operation (fixed wall-clock latency, pipelined).
    FloatingPoint,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// All classes, in declaration order.
    pub const ALL: [OpClass; 5] = [
        OpClass::FixedPoint,
        OpClass::FloatingPoint,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::FixedPoint => "fx",
            OpClass::FloatingPoint => "fp",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction of a synthetic trace.
///
/// Register dependencies are encoded as *distances*: `src1_dist = 3` means
/// the first source operand is produced by the instruction three positions
/// earlier in the trace. A distance of 0 means no (in-flight) dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInst {
    /// Instruction class.
    pub op: OpClass,
    /// Distance to the producer of the first source operand (0 = none).
    pub src1_dist: u16,
    /// Distance to the producer of the second source operand (0 = none).
    pub src2_dist: u16,
    /// Data cache block address (meaningful for loads and stores).
    pub data_block: u32,
    /// Instruction cache block address.
    pub code_block: u32,
    /// Static branch site (meaningful for branches).
    pub branch_site: u32,
    /// Branch outcome (meaningful for branches).
    pub taken: bool,
}

/// A deterministic synthetic instruction trace for one benchmark.
///
/// # Examples
///
/// ```
/// use udse_trace::{Benchmark, Trace};
///
/// let t = Trace::generate(Benchmark::Gzip, 500, 1);
/// let stats = t.stats();
/// assert_eq!(stats.instructions, 500);
/// assert!(stats.branch_frac > 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    benchmark: Benchmark,
    insts: Vec<TraceInst>,
}

impl Trace {
    /// Generates a `len`-instruction trace for `benchmark`. Identical
    /// `(benchmark, len, seed)` triples yield identical traces.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn generate(benchmark: Benchmark, len: usize, seed: u64) -> Self {
        assert!(len > 0, "trace length must be positive");
        let mut gen = TraceGenerator::new(benchmark, seed);
        let insts = (0..len).map(|_| gen.next_inst()).collect();
        Trace { benchmark, insts }
    }

    /// Wraps pre-built instructions (used by tests and custom workloads).
    pub fn from_instructions(benchmark: Benchmark, insts: Vec<TraceInst>) -> Self {
        assert!(!insts.is_empty(), "trace must be non-empty");
        Trace { benchmark, insts }
    }

    /// The benchmark this trace models.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[TraceInst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty (never true for generated traces).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        let n = self.insts.len();
        let mut counts = [0usize; 5];
        let mut taken = 0usize;
        let mut branches = 0usize;
        let mut dep_sum = 0u64;
        let mut dep_cnt = 0u64;
        let mut data_blocks = std::collections::HashSet::new();
        let mut code_blocks = std::collections::HashSet::new();
        for i in &self.insts {
            let k = OpClass::ALL.iter().position(|&c| c == i.op).expect("class");
            counts[k] += 1;
            if i.op == OpClass::Branch {
                branches += 1;
                if i.taken {
                    taken += 1;
                }
            }
            if matches!(i.op, OpClass::Load | OpClass::Store) {
                data_blocks.insert(i.data_block);
            }
            code_blocks.insert(i.code_block);
            if i.src1_dist > 0 {
                dep_sum += i.src1_dist as u64;
                dep_cnt += 1;
            }
            if i.src2_dist > 0 {
                dep_sum += i.src2_dist as u64;
                dep_cnt += 1;
            }
        }
        TraceStats {
            instructions: n,
            fixed_frac: counts[0] as f64 / n as f64,
            float_frac: counts[1] as f64 / n as f64,
            load_frac: counts[2] as f64 / n as f64,
            store_frac: counts[3] as f64 / n as f64,
            branch_frac: counts[4] as f64 / n as f64,
            taken_rate: if branches == 0 { 0.0 } else { taken as f64 / branches as f64 },
            mean_dep_dist: if dep_cnt == 0 { 0.0 } else { dep_sum as f64 / dep_cnt as f64 },
            distinct_data_blocks: data_blocks.len(),
            distinct_code_blocks: code_blocks.len(),
        }
    }
}

/// Summary statistics of a trace, used for calibration and testing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Trace length.
    pub instructions: usize,
    /// Fraction of fixed-point ops.
    pub fixed_frac: f64,
    /// Fraction of floating-point ops.
    pub float_frac: f64,
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of branches.
    pub branch_frac: f64,
    /// Fraction of branches that are taken.
    pub taken_rate: f64,
    /// Mean non-zero dependency distance.
    pub mean_dep_dist: f64,
    /// Number of distinct data blocks touched.
    pub distinct_data_blocks: usize,
    /// Number of distinct code blocks touched.
    pub distinct_code_blocks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Trace::generate(Benchmark::Gcc, 2_000, 5);
        let b = Trace::generate(Benchmark::Gcc, 2_000, 5);
        assert_eq!(a, b);
        let c = Trace::generate(Benchmark::Gcc, 2_000, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn stats_mix_tracks_profile() {
        for b in Benchmark::ALL {
            let t = Trace::generate(b, 30_000, 1);
            let s = t.stats();
            let mix = b.profile().mix;
            assert!((s.load_frac - mix.load).abs() < 0.02, "{b} load frac off");
            assert!((s.branch_frac - mix.branch).abs() < 0.02, "{b} branch frac off");
            assert!((s.float_frac - mix.float).abs() < 0.02, "{b} float frac off");
        }
    }

    #[test]
    fn mcf_touches_more_data_than_gzip() {
        let mcf = Trace::generate(Benchmark::Mcf, 30_000, 2).stats();
        let gzip = Trace::generate(Benchmark::Gzip, 30_000, 2).stats();
        assert!(mcf.distinct_data_blocks > 3 * gzip.distinct_data_blocks);
    }

    #[test]
    fn mesa_touches_more_code_than_gzip() {
        let mesa = Trace::generate(Benchmark::Mesa, 30_000, 2).stats();
        let gzip = Trace::generate(Benchmark::Gzip, 30_000, 2).stats();
        assert!(mesa.distinct_code_blocks > 3 * gzip.distinct_code_blocks);
    }

    #[test]
    fn dependency_distances_track_profile_ilp() {
        let ammp = Trace::generate(Benchmark::Ammp, 30_000, 3).stats();
        let mcf = Trace::generate(Benchmark::Mcf, 30_000, 3).stats();
        assert!(ammp.mean_dep_dist > mcf.mean_dep_dist * 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = Trace::generate(Benchmark::Jbb, 0, 1);
    }

    #[test]
    fn from_instructions_roundtrip() {
        let insts = vec![TraceInst {
            op: OpClass::FixedPoint,
            src1_dist: 0,
            src2_dist: 0,
            data_block: 0,
            code_block: 0,
            branch_site: 0,
            taken: false,
        }];
        let t = Trace::from_instructions(Benchmark::Gzip, insts.clone());
        assert_eq!(t.instructions(), &insts[..]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
