use rand::Rng;

/// Generates a stream of cache-block addresses whose *LRU stack distances*
/// follow a bounded-Pareto distribution: `P(stack distance > d) ~ d^-alpha`
/// for `1 <= d <= footprint`.
///
/// Stack distance is the number of *distinct* blocks touched since the
/// last access to a block — the quantity that determines hit/miss in an
/// LRU cache of a given capacity. The generator maintains a true LRU
/// stack (a Fenwick-indexed occurrence list giving O(log n) rank
/// selection) and, per access, samples a recency rank from the Pareto
/// distribution and re-touches the block at that rank. A cache of
/// capacity `C` blocks therefore sees a miss ratio of approximately
/// `P(d > C)` = `C^-alpha`, so miss rates fall smoothly and
/// benchmark-specifically with capacity — the behaviour the design space
/// studies revolve around.
///
/// Streams can start *cold* ([`ReuseStream::new`]: the footprint is
/// explored compulsorily as sampled ranks overshoot the blocks touched so
/// far) or *stationary* ([`ReuseStream::stationary`]: the stack is
/// pre-populated with the whole footprint, modeling a trace sampled from
/// the middle of a long-running program).
///
/// # Examples
///
/// ```
/// use udse_trace::ReuseStream;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut s = ReuseStream::stationary(1024, 1.0, 0.01);
/// let a = s.next_address(&mut rng);
/// assert!(a < 1024);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseStream {
    /// Occurrence list, oldest first. `u64::MAX` marks a dead slot.
    slots: Vec<u64>,
    /// Fenwick tree over slot liveness (1 = live).
    fenwick: Vec<u32>,
    /// Current slot of each block, or `NO_SLOT`.
    pos_of: Vec<u32>,
    /// Number of live (distinct) blocks on the stack.
    live: u32,
    footprint: u64,
    alpha: f64,
    cold_frac: f64,
    /// Optional secondary working set: `(fraction, lo, hi)` — with the
    /// given probability the stack distance is drawn log-uniformly from
    /// `[lo, hi]` instead of the Pareto body. Models a large structure
    /// (e.g. a graph) traversed with its own reuse scale.
    far_band: Option<(f64, u64, u64)>,
    /// Next block id for compulsory exploration (cold mode).
    next_fresh: u64,
}

const NO_SLOT: u32 = u32::MAX;

impl ReuseStream {
    /// Creates a cold stream over `footprint` distinct blocks with Pareto
    /// exponent `alpha` and streaming fraction `cold_frac`.
    ///
    /// # Panics
    ///
    /// Panics if `footprint == 0`, `alpha <= 0`, or `cold_frac` is outside
    /// `[0, 1]`.
    pub fn new(footprint: u64, alpha: f64, cold_frac: f64) -> Self {
        assert!(footprint > 0, "footprint must be positive");
        assert!(footprint <= (1 << 26), "footprint too large for index maps");
        assert!(alpha > 0.0, "alpha must be positive");
        assert!((0.0..=1.0).contains(&cold_frac), "cold_frac must be in [0, 1]");
        let cap = slots_capacity(footprint);
        ReuseStream {
            slots: Vec::with_capacity(cap),
            fenwick: vec![0; cap + 1],
            pos_of: vec![NO_SLOT; footprint as usize],
            live: 0,
            footprint,
            alpha,
            cold_frac,
            far_band: None,
            next_fresh: 0,
        }
    }

    /// Creates a stationary stream: the whole footprint starts on the
    /// stack (block 0 deepest), so reuse behaviour is in steady state from
    /// the first access.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ReuseStream::new`].
    pub fn stationary(footprint: u64, alpha: f64, cold_frac: f64) -> Self {
        let mut s = ReuseStream::new(footprint, alpha, cold_frac);
        for b in 0..footprint {
            s.push_block(b);
        }
        s.next_fresh = 0;
        s
    }

    /// Adds a secondary working set: with probability `frac` the stack
    /// distance is drawn log-uniformly from `[lo, hi]` (clamped to the
    /// footprint) instead of the Pareto body.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]` or `lo` is zero or above `hi`.
    pub fn with_far_band(mut self, frac: f64, lo: u64, hi: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "band fraction must be in [0, 1]");
        assert!(lo >= 1 && lo <= hi, "band bounds must satisfy 1 <= lo <= hi");
        self.far_band = Some((frac, lo, hi.min(self.footprint)));
        self
    }

    /// The number of distinct blocks this stream can touch.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Number of distinct blocks currently on the stack.
    pub fn live_blocks(&self) -> u64 {
        self.live as u64
    }

    /// Issues the next block address.
    pub fn next_address<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let block = if self.live == 0 || rng.gen::<f64>() < self.cold_frac {
            self.coldest_or_fresh()
        } else {
            let d = match self.far_band {
                Some((frac, lo, hi)) if rng.gen::<f64>() < frac => log_uniform(rng, lo, hi),
                _ => bounded_pareto(rng, self.alpha, self.footprint),
            };
            if d > self.live as u64 {
                self.coldest_or_fresh()
            } else {
                self.block_at_rank(d as u32)
            }
        };
        self.push_block(block);
        block
    }

    /// Issues the deterministic fall-through successor of `cur` (the next
    /// sequential code block), registering it as most recently used.
    pub fn sequential_next(&mut self, cur: u64) -> u64 {
        let block = (cur + 1) % self.footprint;
        self.push_block(block);
        block
    }

    /// Registers an externally chosen block as most recently used.
    pub fn touch(&mut self, block: u64) {
        assert!(block < self.footprint, "block outside footprint");
        self.push_block(block);
    }

    /// Returns (without touching) a block for a compulsory access: an
    /// unexplored block while any remain, otherwise the least recently
    /// used block (streaming sweep).
    fn coldest_or_fresh(&mut self) -> u64 {
        if (self.live as u64) < self.footprint {
            // Find the next block that is not on the stack.
            for _ in 0..self.footprint {
                let b = self.next_fresh;
                self.next_fresh = (self.next_fresh + 1) % self.footprint;
                if self.pos_of[b as usize] == NO_SLOT {
                    return b;
                }
            }
            unreachable!("live < footprint guarantees an absent block");
        } else {
            self.block_at_rank(self.live)
        }
    }

    /// The block at recency rank `d` (1 = most recently used).
    ///
    /// # Panics
    ///
    /// Panics if `d` is 0 or exceeds the live block count.
    fn block_at_rank(&self, d: u32) -> u64 {
        assert!(d >= 1 && d <= self.live, "rank out of range");
        // The d-th most recent live slot is the (live - d + 1)-th live slot
        // from the front.
        let k = self.live - d + 1;
        let idx = self.fenwick_select(k);
        self.slots[idx]
    }

    /// Moves `block` to the top of the stack.
    fn push_block(&mut self, block: u64) {
        let b = block as usize;
        let old = self.pos_of[b];
        if old != NO_SLOT {
            self.slots[old as usize] = u64::MAX;
            self.fenwick_add(old as usize, -1);
            self.live -= 1;
        }
        if self.slots.len() == self.fenwick.len() - 1 {
            self.compact();
        }
        let idx = self.slots.len();
        self.slots.push(block);
        self.fenwick_add(idx, 1);
        self.pos_of[b] = idx as u32;
        self.live += 1;
    }

    /// Rebuilds the occurrence list keeping only live slots, preserving
    /// order. Amortized O(1) per access.
    fn compact(&mut self) {
        let mut new_slots = Vec::with_capacity(self.fenwick.len() - 1);
        for &s in self.slots.iter().filter(|&&s| s != u64::MAX) {
            self.pos_of[s as usize] = new_slots.len() as u32;
            new_slots.push(s);
        }
        self.slots = new_slots;
        for f in &mut self.fenwick {
            *f = 0;
        }
        for i in 0..self.slots.len() {
            self.fenwick_add(i, 1);
        }
    }

    fn fenwick_add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.fenwick.len() {
            self.fenwick[i] = (self.fenwick[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Index of the k-th live slot (1-based) from the front.
    fn fenwick_select(&self, mut k: u32) -> usize {
        let n = self.fenwick.len() - 1;
        let mut pos = 0usize;
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.fenwick[next] < k {
                k -= self.fenwick[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos // 0-based index of the k-th live slot
    }
}

/// Occurrence-list capacity: enough slack that compaction is infrequent.
fn slots_capacity(footprint: u64) -> usize {
    ((footprint as usize) * 2).max(1024)
}

/// Samples a bounded-Pareto stack distance in `[1, max_d]` with tail
/// exponent `alpha` by inverse-CDF sampling of `P(D > d) = d^-alpha`,
/// truncated at `max_d`.
fn bounded_pareto<R: Rng>(rng: &mut R, alpha: f64, max_d: u64) -> u64 {
    if max_d <= 1 {
        return 1;
    }
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let d = u.powf(-1.0 / alpha);
    if d >= max_d as f64 {
        max_d
    } else {
        d as u64
    }
}

/// Samples log-uniformly from `[lo, hi]`: each octave of stack distance
/// receives equal probability mass.
fn log_uniform<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        return lo;
    }
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let d = (llo + rng.gen::<f64>() * (lhi - llo)).exp();
    (d as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn addresses_stay_within_footprint() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ReuseStream::new(100, 0.8, 0.05);
        for _ in 0..10_000 {
            assert!(s.next_address(&mut rng) < 100);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = ReuseStream::stationary(500, 0.6, 0.02);
            (0..1000).map(|_| s.next_address(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    /// Empirical miss ratio of an ideal fully-associative LRU cache of
    /// `capacity` blocks over `n` stream accesses.
    fn lru_miss_ratio(stream: &mut ReuseStream, capacity: usize, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Simple LRU via Vec (test-only).
        let mut lru: Vec<u64> = Vec::new();
        let mut misses = 0;
        for _ in 0..n {
            let a = stream.next_address(&mut rng);
            if let Some(p) = lru.iter().position(|&x| x == a) {
                lru.remove(p);
            } else {
                misses += 1;
                if lru.len() == capacity {
                    lru.pop();
                }
            }
            lru.insert(0, a);
        }
        misses as f64 / n as f64
    }

    #[test]
    fn miss_ratio_tracks_pareto_tail() {
        // Stationary stream with alpha = 0.5 over 4096 blocks: an LRU cache
        // of C blocks should miss at about C^-0.5.
        let mut s = ReuseStream::stationary(4096, 0.5, 0.0);
        let m64 = lru_miss_ratio(&mut s, 64, 30_000, 1);
        let expected = 64f64.powf(-0.5); // 0.125
        assert!((m64 - expected).abs() < 0.04, "miss {m64} vs expected {expected}");

        let mut s = ReuseStream::stationary(4096, 0.5, 0.0);
        let m1024 = lru_miss_ratio(&mut s, 1024, 30_000, 2);
        let expected = 1024f64.powf(-0.5); // 0.031
        assert!((m1024 - expected).abs() < 0.03, "miss {m1024} vs expected {expected}");
        assert!(m64 > m1024);
    }

    #[test]
    fn higher_alpha_gives_tighter_locality() {
        let mut tight = ReuseStream::stationary(10_000, 1.5, 0.0);
        let mut loose = ReuseStream::stationary(10_000, 0.3, 0.0);
        let miss_tight = lru_miss_ratio(&mut tight, 64, 10_000, 42);
        let miss_loose = lru_miss_ratio(&mut loose, 64, 10_000, 42);
        assert!(miss_tight + 0.1 < miss_loose, "{miss_tight} vs {miss_loose}");
    }

    #[test]
    fn cold_stream_explores_with_low_alpha() {
        let distinct = |alpha: f64| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut s = ReuseStream::new(1 << 16, alpha, 0.0);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..20_000 {
                seen.insert(s.next_address(&mut rng));
            }
            seen.len()
        };
        assert!(distinct(0.3) > 4 * distinct(1.5));
    }

    #[test]
    fn cold_fraction_adds_streaming() {
        let distinct = |cold: f64| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut s = ReuseStream::new(1 << 20, 1.5, cold);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..5_000 {
                seen.insert(s.next_address(&mut rng));
            }
            seen.len()
        };
        assert!(distinct(0.2) > distinct(0.01));
    }

    #[test]
    fn stationary_starts_with_full_stack() {
        let s = ReuseStream::stationary(256, 1.0, 0.0);
        assert_eq!(s.live_blocks(), 256);
    }

    #[test]
    fn rank_one_is_most_recent() {
        let mut s = ReuseStream::new(16, 1.0, 0.0);
        s.touch(3);
        s.touch(7);
        assert_eq!(s.block_at_rank(1), 7);
        assert_eq!(s.block_at_rank(2), 3);
        // Re-touching 3 moves it to rank 1 without duplicating it.
        s.touch(3);
        assert_eq!(s.block_at_rank(1), 3);
        assert_eq!(s.block_at_rank(2), 7);
        assert_eq!(s.live_blocks(), 2);
    }

    #[test]
    fn compaction_preserves_order() {
        let mut s = ReuseStream::new(8, 1.0, 0.0);
        // Enough touches to force multiple compactions (capacity >= 1024).
        for i in 0..5_000u64 {
            s.touch(i % 8);
        }
        // Most recent is 4999 % 8 = 7, then 6, 5, ...
        assert_eq!(s.block_at_rank(1), 7);
        assert_eq!(s.block_at_rank(2), 6);
        assert_eq!(s.block_at_rank(8), 0);
        assert_eq!(s.live_blocks(), 8);
    }

    #[test]
    fn sequential_next_advances_and_wraps() {
        let mut s = ReuseStream::new(4, 1.0, 0.0);
        assert_eq!(s.sequential_next(0), 1);
        assert_eq!(s.sequential_next(3), 0);
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let d = bounded_pareto(&mut rng, 0.5, 64);
            assert!((1..=64).contains(&d));
        }
        assert_eq!(bounded_pareto(&mut rng, 0.5, 1), 1);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_panics() {
        let _ = ReuseStream::new(0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside footprint")]
    fn touch_outside_footprint_panics() {
        let mut s = ReuseStream::new(4, 1.0, 0.0);
        s.touch(4);
    }
}
