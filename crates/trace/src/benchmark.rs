use std::fmt;
use std::str::FromStr;

use crate::profile::WorkloadProfile;

/// The nine benchmarks of the paper's suite (§2.2): SPECjbb plus eight
/// compute-intensive SPEC2000 programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// SPEC2000 `ammp` — molecular dynamics; floating-point, ILP-rich.
    Ammp,
    /// SPEC2000 `applu` — parabolic/elliptic PDEs; floating-point.
    Applu,
    /// SPEC2000 `equake` — seismic wave propagation; floating-point.
    Equake,
    /// SPEC2000 `gcc` — C compiler; branchy integer code.
    Gcc,
    /// SPEC2000 `gzip` — compression; compute-bound integer, small footprint.
    Gzip,
    /// SPECjbb — Java server workload; wide-issue friendly, large data side.
    Jbb,
    /// SPEC2000 `mcf` — combinatorial optimization; memory-bound, low ILP.
    Mcf,
    /// SPEC2000 `mesa` — 3-D graphics library; high IPC.
    Mesa,
    /// SPEC2000 `twolf` — place and route; mixed integer with cache appetite.
    Twolf,
}

impl Benchmark {
    /// All nine benchmarks in the paper's (alphabetical) reporting order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Ammp,
        Benchmark::Applu,
        Benchmark::Equake,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Jbb,
        Benchmark::Mcf,
        Benchmark::Mesa,
        Benchmark::Twolf,
    ];

    /// Lower-case name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ammp => "ammp",
            Benchmark::Applu => "applu",
            Benchmark::Equake => "equake",
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::Jbb => "jbb",
            Benchmark::Mcf => "mcf",
            Benchmark::Mesa => "mesa",
            Benchmark::Twolf => "twolf",
        }
    }

    /// The calibrated workload profile for this benchmark.
    ///
    /// Profiles encode the qualitative execution characteristics the paper
    /// relies on; see the crate docs and `DESIGN.md` for the substitution
    /// rationale.
    pub fn profile(self) -> WorkloadProfile {
        WorkloadProfile::for_benchmark(self)
    }

    /// Stable small integer id, used to derive deterministic RNG seeds.
    pub fn id(self) -> u64 {
        Benchmark::ALL.iter().position(|&b| b == self).expect("benchmark in ALL") as u64
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    input: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}` (expected one of ammp, applu, equake, gcc, gzip, jbb, mcf, mesa, twolf)", self.input)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError { input: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_nine_unique_names() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 9);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn roundtrip_parse_display() {
        for b in Benchmark::ALL {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
            assert_eq!(format!("{b}"), b.name());
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "bzip2".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("bzip2"));
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let ids: Vec<u64> = Benchmark::ALL.iter().map(|b| b.id()).collect();
        assert_eq!(ids, (0..9).collect::<Vec<u64>>());
    }
}
