//! Workload characterization: measured trace statistics versus the
//! profile parameters that generated them.
//!
//! The paper's benchmarks were validated against full reference traces
//! ([11]); the analogue for synthetic workloads is checking that each
//! generated trace exhibits the mix, ILP, control-flow, and locality its
//! profile promises. [`characterize`] produces that report and
//! [`CharacterReport::check`] turns it into pass/fail deviations, used
//! both by tests and by the `repro workloads` diagnostic.

use crate::trace_data::{Trace, TraceStats};
use crate::{Benchmark, WorkloadProfile};

/// Measured-vs-intended characterization of one trace.
#[derive(Debug, Clone)]
pub struct CharacterReport {
    /// The benchmark characterized.
    pub benchmark: Benchmark,
    /// The profile the trace was generated from.
    pub profile: WorkloadProfile,
    /// Measured statistics.
    pub stats: TraceStats,
}

/// One measured-vs-intended deviation found by [`CharacterReport::check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// Quantity name (e.g. `"load_frac"`).
    pub quantity: &'static str,
    /// Value promised by the profile.
    pub intended: f64,
    /// Value measured on the trace.
    pub measured: f64,
}

/// Generates a trace of `len` instructions and characterizes it.
pub fn characterize(benchmark: Benchmark, len: usize, seed: u64) -> CharacterReport {
    let trace = Trace::generate(benchmark, len, seed);
    CharacterReport { benchmark, profile: benchmark.profile(), stats: trace.stats() }
}

impl CharacterReport {
    /// Compares measured statistics against the profile, returning the
    /// quantities that deviate by more than `tolerance` (relative, with
    /// an absolute floor of 0.02 for small fractions).
    pub fn check(&self, tolerance: f64) -> Vec<Deviation> {
        let mut out = Vec::new();
        let mut check = |quantity: &'static str, intended: f64, measured: f64| {
            let scale = intended.abs().max(0.02);
            if ((measured - intended) / scale).abs() > tolerance {
                out.push(Deviation { quantity, intended, measured });
            }
        };
        check("fixed_frac", self.profile.mix.fixed, self.stats.fixed_frac);
        check("float_frac", self.profile.mix.float, self.stats.float_frac);
        check("load_frac", self.profile.mix.load, self.stats.load_frac);
        check("store_frac", self.profile.mix.store, self.stats.store_frac);
        check("branch_frac", self.profile.mix.branch, self.stats.branch_frac);
        // Mean dependency distance: the generated distribution is
        // geometric with the profile's mean, truncated at the window.
        check("mean_dep_dist", self.profile.dep_mean, self.stats.mean_dep_dist);
        out
    }

    /// The distinct data blocks measured, as a fraction of the profile's
    /// footprint — a coverage indicator (short traces cannot visit a
    /// multi-megabyte footprint).
    pub fn data_coverage(&self) -> f64 {
        self.stats.distinct_data_blocks as f64 / self.profile.data_footprint as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_within_tolerance() {
        for b in Benchmark::ALL {
            let report = characterize(b, 40_000, 3);
            let deviations = report.check(0.12);
            assert!(deviations.is_empty(), "{b}: profile deviations {deviations:?}");
        }
    }

    #[test]
    fn check_flags_injected_deviation() {
        let mut report = characterize(Benchmark::Gzip, 10_000, 1);
        report.profile.mix.load = 0.9; // sabotage the intent
        let deviations = report.check(0.12);
        assert!(deviations.iter().any(|d| d.quantity == "load_frac"));
    }

    #[test]
    fn coverage_is_a_fraction() {
        let report = characterize(Benchmark::Mcf, 20_000, 1);
        let c = report.data_coverage();
        assert!(c > 0.0 && c <= 1.0, "coverage {c}");
    }
}
