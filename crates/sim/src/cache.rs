use crate::config::{MachineConfig, BLOCK_BYTES};

/// Which level of the hierarchy satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the queried L1 (instruction or data).
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed everything; served from main memory.
    Memory,
}

/// A set-associative cache with true-LRU replacement over block
/// addresses.
///
/// The simulator operates at block granularity (the trace generator emits
/// 128-byte block addresses), so the cache stores tags only.
///
/// # Examples
///
/// ```
/// use udse_sim::SetAssocCache;
///
/// let mut c = SetAssocCache::new(8, 2); // 8 KB, 2-way, 128 B blocks
/// assert!(!c.access(42)); // cold miss
/// assert!(c.access(42));  // hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    assoc: usize,
    /// `sets - 1` when the set count is a power of two (every geometry
    /// in the paper's design space), letting the set index be a mask
    /// instead of an integer division; 0 otherwise, selecting the
    /// modulo fallback. Identical indices either way.
    set_mask: usize,
    /// `tags[set * assoc + way]`: block address or `u64::MAX` when
    /// invalid, ordered most-recently-used first within each set.
    tags: Vec<u64>,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `size_kb` kilobytes with `assoc` ways and
    /// 128-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes or associativity
    /// larger than the block count).
    pub fn new(size_kb: u32, assoc: u32) -> Self {
        assert!(size_kb > 0 && assoc > 0, "degenerate cache geometry");
        let blocks = (size_kb as usize * 1024) / BLOCK_BYTES as usize;
        assert!(blocks >= assoc as usize, "associativity exceeds block count");
        let sets = (blocks / assoc as usize).max(1);
        SetAssocCache {
            sets,
            assoc: assoc as usize,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            tags: vec![u64::MAX; sets * assoc as usize],
            accesses: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accesses `block`, updating LRU state; returns `true` on hit.
    /// Misses allocate the block (write-allocate at every level).
    pub fn access(&mut self, block: u64) -> bool {
        self.access_hashed(block, mix(block))
    }

    /// [`SetAssocCache::access`] with the caller supplying `mix(block)`
    /// — the stream resolver precomputes the design-invariant hashes
    /// once per trace instead of once per replay.
    pub(crate) fn access_hashed(&mut self, block: u64, hash: u64) -> bool {
        self.accesses += 1;
        let hit = self.install(block, hash);
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// Inserts `block` (moving it to MRU) without counting the touch in
    /// the demand access/miss statistics — the prefetch path.
    pub fn prefetch(&mut self, block: u64) {
        let _ = self.install(block, mix(block));
    }

    /// Moves `block` to MRU, inserting (and evicting LRU) on miss;
    /// returns `true` when the block was already resident. `hash` must
    /// be `mix(block)`.
    fn install(&mut self, block: u64, hash: u64) -> bool {
        let h = hash as usize;
        let set = if self.set_mask != 0 { h & self.set_mask } else { h % self.sets };
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if ways[0] == block {
            // MRU hit: the LRU order is already correct, no writes.
            return true;
        }
        if let Some(pos) = ways.iter().position(|&t| t == block) {
            ways[..=pos].rotate_right(1);
            true
        } else {
            ways.rotate_right(1);
            ways[0] = block;
            false
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Cheap 64-bit mixer decorrelating block addresses from set indices, so a
/// strided footprint does not alias pathologically.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The modeled two-level hierarchy: split L1 (instruction + data) backed
/// by a unified L2. Data and instruction streams use disjoint address
/// spaces (the generator's block ids), which the hierarchy separates with
/// a tag bit.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    il1: SetAssocCache,
    dl1: SetAssocCache,
    l2: SetAssocCache,
}

/// High bit distinguishing instruction blocks from data blocks within the
/// unified L2.
pub(crate) const CODE_SPACE: u64 = 1 << 48;

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry; call [`MachineConfig::validate`]
    /// first for a friendly error.
    pub fn new(config: &MachineConfig) -> Self {
        Self::with_geometry(
            (config.il1_kb, config.il1_assoc),
            (config.dl1_kb, config.dl1_assoc),
            (config.l2_kb, config.l2_assoc),
        )
    }

    /// Builds a hierarchy directly from `(size_kb, assoc)` geometry
    /// triples — the cache sub-configuration that stream preflighting
    /// keys on, without needing a full [`MachineConfig`].
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn with_geometry(il1: (u32, u32), dl1: (u32, u32), l2: (u32, u32)) -> Self {
        CacheHierarchy {
            il1: SetAssocCache::new(il1.0, il1.1),
            dl1: SetAssocCache::new(dl1.0, dl1.1),
            l2: SetAssocCache::new(l2.0, l2.1),
        }
    }

    /// Looks up a data block, touching D-L1 and (on miss) L2.
    pub fn access_data(&mut self, block: u64) -> AccessOutcome {
        self.access_data_hashed(block, mix(block))
    }

    /// [`CacheHierarchy::access_data`] with a precomputed `mix(block)`
    /// (data blocks use the same key at both levels).
    pub(crate) fn access_data_hashed(&mut self, block: u64, hash: u64) -> AccessOutcome {
        if self.dl1.access_hashed(block, hash) {
            AccessOutcome::L1
        } else if self.l2.access_hashed(block, hash) {
            AccessOutcome::L2
        } else {
            AccessOutcome::Memory
        }
    }

    /// Looks up an instruction block, touching I-L1 and (on miss) L2.
    pub fn access_code(&mut self, block: u64) -> AccessOutcome {
        self.access_code_hashed(block, mix(block), mix(block | CODE_SPACE))
    }

    /// [`CacheHierarchy::access_code`] with precomputed hashes of the
    /// I-L1 key (`block`) and the unified-L2 key (`block | CODE_SPACE`).
    pub(crate) fn access_code_hashed(
        &mut self,
        block: u64,
        l1_hash: u64,
        l2_hash: u64,
    ) -> AccessOutcome {
        if self.il1.access_hashed(block, l1_hash) {
            AccessOutcome::L1
        } else if self.l2.access_hashed(block | CODE_SPACE, l2_hash) {
            AccessOutcome::L2
        } else {
            AccessOutcome::Memory
        }
    }

    /// Prefetches an instruction block into I-L1 and L2 without touching
    /// demand statistics.
    pub fn prefetch_code(&mut self, block: u64) {
        self.il1.prefetch(block);
        self.l2.prefetch(block | CODE_SPACE);
    }

    /// Prefetches a data block into D-L1 and L2 without touching demand
    /// statistics.
    pub fn prefetch_data(&mut self, block: u64) {
        self.dl1.prefetch(block);
        self.l2.prefetch(block);
    }

    /// The instruction L1.
    pub fn il1(&self) -> &SetAssocCache {
        &self.il1
    }

    /// The data L1.
    pub fn dl1(&self) -> &SetAssocCache {
        &self.dl1
    }

    /// The unified L2.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

/// Reference-prediction stride prefetcher: when two consecutive
/// demand-block deltas agree, pull the next block on the stride into the
/// hierarchy ahead of the demand access.
///
/// The direct engine and the stream resolver both drive the data cache
/// through this one implementation, so a resolved stream replays exactly
/// the prefetch decisions the direct path would make.
#[derive(Debug, Clone)]
pub(crate) struct StridePrefetcher {
    last_block: i64,
    last_delta: i64,
}

impl StridePrefetcher {
    pub(crate) fn new() -> Self {
        StridePrefetcher { last_block: -1, last_delta: 0 }
    }

    /// Observes one demand access to `block`, issuing a prefetch into
    /// `caches` when the stride is confirmed. Call before the demand
    /// access itself, matching the engine's ordering.
    pub(crate) fn observe(&mut self, caches: &mut CacheHierarchy, block: i64) {
        if self.last_block >= 0 {
            let delta = block - self.last_block;
            if delta != 0 && delta == self.last_delta {
                let next = block + delta;
                if next >= 0 {
                    caches.prefetch_data(next as u64);
                }
            }
            self.last_delta = delta;
        }
        self.last_block = block;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-mapped 1-set scenario: 2 blocks, 2-way -> one set.
        let mut c = SetAssocCache::new(1, 2);
        assert_eq!(c.sets(), 4); // 1 KB / 128 B = 8 blocks / 2-way = 4 sets
                                 // Find three blocks mapping to the same set.
        let mut same_set = Vec::new();
        let target = (mix(0) as usize) % c.sets();
        let mut b = 0u64;
        while same_set.len() < 3 {
            if (mix(b) as usize) % c.sets() == target {
                same_set.push(b);
            }
            b += 1;
        }
        let (a, bb, cc) = (same_set[0], same_set[1], same_set[2]);
        assert!(!c.access(a));
        assert!(!c.access(bb));
        assert!(c.access(a)); // a is MRU now
        assert!(!c.access(cc)); // evicts bb (LRU)
        assert!(c.access(a));
        assert!(!c.access(bb)); // bb was evicted
    }

    #[test]
    fn working_set_within_capacity_mostly_hits() {
        // 16-block working set in a 64-block cache. Hashed set indexing
        // makes a few conflict misses possible (and cyclic sweeps thrash
        // any set holding more blocks than its ways), but at quarter
        // capacity steady state must be dominated by hits.
        let mut c = SetAssocCache::new(8, 2); // 64 blocks
        for _ in 0..10 {
            for b in 0..16u64 {
                c.access(b);
            }
        }
        assert!(c.miss_rate() < 0.15, "miss rate {}", c.miss_rate());
        // Higher associativity absorbs the same working set with fewer
        // conflicts at equal capacity.
        let mut c8 = SetAssocCache::new(8, 8);
        for _ in 0..10 {
            for b in 0..32u64 {
                c8.access(b);
            }
        }
        let mut c1 = SetAssocCache::new(8, 1);
        for _ in 0..10 {
            for b in 0..32u64 {
                c1.access(b);
            }
        }
        assert!(c8.miss_rate() <= c1.miss_rate());
    }

    #[test]
    fn streaming_past_capacity_misses() {
        let mut c = SetAssocCache::new(8, 2); // 64 blocks
        let mut misses = 0;
        for b in 0..10_000u64 {
            if !c.access(b % 1_000) {
                misses += 1;
            }
        }
        // 1,000-block working set in a 64-block cache: nearly all misses.
        assert!(misses > 9_000);
    }

    #[test]
    fn larger_cache_lower_miss_rate() {
        let run = |kb: u32| {
            let mut c = SetAssocCache::new(kb, 2);
            let mut misses = 0;
            // Cyclic working set of 256 blocks (32 KB).
            for i in 0..20_000u64 {
                if !c.access(i % 256) {
                    misses += 1;
                }
            }
            misses
        };
        assert!(run(64) < run(8));
    }

    #[test]
    fn hierarchy_l2_catches_l1_misses() {
        let cfg = MachineConfig::power4_baseline();
        let mut h = CacheHierarchy::new(&cfg);
        // Touch a block: cold -> Memory. Touch again: D-L1 hit.
        assert_eq!(h.access_data(7), AccessOutcome::Memory);
        assert_eq!(h.access_data(7), AccessOutcome::L1);
        // Evict from tiny view: stream enough blocks to evict 7 from L1
        // (32 KB = 256 blocks) but not from the 2 MB L2.
        for b in 100..1_000u64 {
            h.access_data(b);
        }
        assert_eq!(h.access_data(7), AccessOutcome::L2);
    }

    #[test]
    fn code_and_data_spaces_do_not_collide_in_l2() {
        let cfg = MachineConfig::power4_baseline();
        let mut h = CacheHierarchy::new(&cfg);
        h.access_data(1);
        // Same numeric block id on the code side must still cold-miss.
        assert_eq!(h.access_code(1), AccessOutcome::Memory);
        assert_eq!(h.access_code(1), AccessOutcome::L1);
    }

    #[test]
    fn prefetch_installs_without_counting() {
        let mut c = SetAssocCache::new(8, 2);
        c.prefetch(5);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(5), "prefetched block must hit");
    }

    #[test]
    fn hierarchy_prefetch_feeds_both_levels() {
        let cfg = MachineConfig::power4_baseline();
        let mut h = CacheHierarchy::new(&cfg);
        h.prefetch_code(9);
        assert_eq!(h.access_code(9), AccessOutcome::L1);
        h.prefetch_data(11);
        assert_eq!(h.access_data(11), AccessOutcome::L1);
    }

    #[test]
    fn miss_counters_track() {
        let mut c = SetAssocCache::new(8, 2);
        c.access(1);
        c.access(1);
        c.access(2);
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_size_panics() {
        let _ = SetAssocCache::new(0, 1);
    }
}
