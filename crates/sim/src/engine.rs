use udse_trace::{OpClass, Trace};

use crate::cache::{AccessOutcome, CacheHierarchy, StridePrefetcher};
use crate::config::MachineConfig;
use crate::power::PowerModel;
use crate::predictor::BhtPredictor;
use crate::resources::ResourcePool;
use crate::result::{ActivityCounts, SimResult, StallBreakdown};

/// Dependency window: matches the trace generator's maximum dependency
/// distance.
pub(crate) const DEP_WINDOW: usize = 1024;

/// Trace-driven, dependence-scheduling simulator of the configured
/// machine.
///
/// `run` walks the trace in program order and computes, for every
/// instruction, its fetch, dispatch, issue, completion, and commit cycles
/// subject to:
///
/// - fetch bandwidth, I-cache misses, taken-branch fetch bubbles, and
///   branch-misprediction redirects (penalty = front-end depth, which
///   grows as FO4-per-stage shrinks);
/// - dispatch/commit bandwidth and in-order dispatch/commit;
/// - reorder buffer, physical register (GPR/FPR/SPR), reservation station
///   (FX/FP/BR), load-store queue, and store-queue occupancy;
/// - register dependences through the trace's producer distances;
/// - per-class functional unit issue slots (pipelined);
/// - D-cache/L2/memory latencies, with overlapping misses modeling
///   memory-level parallelism (serialized only by true dependences, e.g.
///   pointer chasing).
///
/// # Examples
///
/// ```
/// use udse_sim::{MachineConfig, Simulator};
/// use udse_trace::{Benchmark, Trace};
///
/// let sim = Simulator::new(MachineConfig::power4_baseline());
/// let result = sim.run(&Trace::generate(Benchmark::Ammp, 2_000, 3));
/// assert!(result.ipc > 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
}

impl Simulator {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`MachineConfig::validate`] to check first.
    pub fn new(config: MachineConfig) -> Self {
        config.validate().expect("invalid machine configuration");
        Simulator { config }
    }

    /// The simulated machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Simulates `trace` on the configured machine and returns timing,
    /// activity, and power results.
    pub fn run(&self, trace: &Trace) -> SimResult {
        self.run_with_warmup(trace, 0)
    }

    /// Simulates `trace`, discarding statistics for the first
    /// `warmup_insts` instructions while still using them to warm caches,
    /// the branch predictor, and pipeline state — the standard technique
    /// for removing cold-start bias when a short trace stands in for a
    /// long program (cf. SMARTS-style sampling, which the paper cites).
    ///
    /// # Panics
    ///
    /// Panics if `warmup_insts >= trace.len()`.
    pub fn run_with_warmup(&self, trace: &Trace, warmup_insts: usize) -> SimResult {
        assert!(warmup_insts < trace.len(), "warmup must leave at least one measured instruction");
        let cfg = &self.config;
        let t = cfg.timing();

        let mut caches = CacheHierarchy::new(cfg);
        let mut bht = BhtPredictor::with_counter_bits(cfg.bht_entries, cfg.bht_counter_bits);

        // Occupancy pools. Physical registers available for renaming are
        // the pool beyond the architected state.
        let mut rob = ResourcePool::new(cfg.rob_entries as usize);
        let mut gpr = ResourcePool::new((cfg.gpr - 32) as usize);
        let mut fpr = ResourcePool::new((cfg.fpr - 32) as usize);
        let mut spr = ResourcePool::new((cfg.spr - 8) as usize);
        let mut resv_fx = ResourcePool::new(cfg.resv_fx as usize);
        let mut resv_fp = ResourcePool::new(cfg.resv_fp as usize);
        let mut resv_br = ResourcePool::new(cfg.resv_br as usize);
        let mut lsq = ResourcePool::new(cfg.lsq_entries as usize);
        let mut sq = ResourcePool::new(cfg.store_queue_entries as usize);
        // Per-class pipelined issue slots.
        let units = cfg.units_per_class as usize;
        let mut fu_fx = ResourcePool::new(units);
        let mut fu_fp = ResourcePool::new(units);
        let mut fu_ls = ResourcePool::new(units);
        let mut fu_br = ResourcePool::new(units);

        // Completion times of the last DEP_WINDOW instructions.
        let mut complete_ring = [0u64; DEP_WINDOW];

        // Fetch state.
        let mut fetch_cycle: u64 = 0;
        let mut fetched_this_cycle: u32 = 0;
        let mut redirect_ready: u64 = 0;
        let mut prev_code_block: Option<u32> = None;

        // Dispatch / issue / commit in-order state.
        let mut last_dispatch: u64 = 0;
        let mut dispatched_this_cycle: u32 = 0;
        let mut last_issue: u64 = 0;
        let mut last_commit: u64 = 0;
        let mut committed_this_cycle: u32 = 0;

        let mut acts = ActivityCounts::default();
        let mut stalls = StallBreakdown::default();
        let mut final_commit: u64 = 0;
        let mut prefetcher = StridePrefetcher::new();
        // Counter snapshots at the warmup boundary; subtracted at the end.
        let mut warmup_commit: u64 = 0;
        let mut warmup_snapshot = WarmupSnapshot::default();

        for (i, inst) in trace.instructions().iter().enumerate() {
            if i == warmup_insts && i > 0 {
                warmup_commit = last_commit;
                warmup_snapshot = WarmupSnapshot::capture(&acts, &caches, &bht);
            }
            // ---------------- fetch ----------------
            let mut fc = fetch_cycle.max(redirect_ready);
            if fc > fetch_cycle {
                stalls.redirect += fc - fetch_cycle;
                fetched_this_cycle = 0;
            }
            if prev_code_block != Some(inst.code_block) {
                let miss_penalty = match caches.access_code(inst.code_block as u64) {
                    AccessOutcome::L1 => 0,
                    AccessOutcome::L2 => t.l2_latency,
                    AccessOutcome::Memory => t.l2_latency + t.memory_latency,
                };
                if cfg.il1_next_line_prefetch {
                    caches.prefetch_code(inst.code_block as u64 + 1);
                }
                if miss_penalty > 0 {
                    stalls.icache += miss_penalty;
                    fc += miss_penalty;
                    fetched_this_cycle = 0;
                }
                prev_code_block = Some(inst.code_block);
            }
            if fetched_this_cycle >= cfg.decode_width {
                fc += 1;
                fetched_this_cycle = 0;
            }
            fetched_this_cycle += 1;
            fetch_cycle = fc;

            // ---------------- dispatch ----------------
            let mut d = (fc + t.front_stages).max(last_dispatch);
            if d == last_dispatch && dispatched_this_cycle >= cfg.dispatch_width() {
                d += 1;
            }
            let before_rob = d;
            d = rob.acquire(d);
            stalls.rob += d - before_rob;
            let reg_pool: Option<&mut ResourcePool> = match inst.op {
                OpClass::FixedPoint | OpClass::Load => Some(&mut gpr),
                OpClass::FloatingPoint => Some(&mut fpr),
                OpClass::Branch => Some(&mut spr),
                OpClass::Store => None,
            };
            if let Some(pool) = reg_pool {
                let before = d;
                d = pool.acquire(d);
                stalls.registers += d - before;
            }
            let (resv_pool, is_mem): (&mut ResourcePool, bool) = match inst.op {
                OpClass::FixedPoint => (&mut resv_fx, false),
                OpClass::FloatingPoint => (&mut resv_fp, false),
                OpClass::Branch => (&mut resv_br, false),
                OpClass::Load | OpClass::Store => (&mut lsq, true),
            };
            let before = d;
            d = resv_pool.acquire(d);
            if is_mem {
                stalls.lsq += d - before;
            } else {
                stalls.reservations += d - before;
            }
            if inst.op == OpClass::Store {
                let before = d;
                d = sq.acquire(d);
                stalls.store_queue += d - before;
            }
            if d > last_dispatch {
                dispatched_this_cycle = 0;
            }
            dispatched_this_cycle += 1;
            last_dispatch = d;

            // ---------------- operand readiness ----------------
            let mut ready = d + 1;
            for dist in [inst.src1_dist, inst.src2_dist] {
                if dist > 0 && (dist as usize) <= i.min(DEP_WINDOW) {
                    let producer = complete_ring[(i - dist as usize) % DEP_WINDOW];
                    ready = ready.max(producer);
                }
            }

            // ---------------- issue ----------------
            let fu: &mut ResourcePool = match inst.op {
                OpClass::FixedPoint => &mut fu_fx,
                OpClass::FloatingPoint => &mut fu_fp,
                OpClass::Load | OpClass::Store => &mut fu_ls,
                OpClass::Branch => &mut fu_br,
            };
            let mut iss = fu.acquire(ready);
            if cfg.in_order {
                iss = iss.max(last_issue);
            }
            fu.release_at(iss + 1);
            last_issue = iss;

            // ---------------- execute / complete ----------------
            let complete = match inst.op {
                OpClass::FixedPoint => iss + t.fx_latency,
                OpClass::FloatingPoint => iss + t.fp_latency,
                OpClass::Branch => iss + t.fx_latency,
                OpClass::Load => {
                    acts.loads += 1;
                    if cfg.dl1_stride_prefetch {
                        prefetcher.observe(&mut caches, inst.data_block as i64);
                    }
                    let lat = match caches.access_data(inst.data_block as u64) {
                        AccessOutcome::L1 => t.dl1_latency,
                        AccessOutcome::L2 => t.dl1_latency + t.l2_latency,
                        AccessOutcome::Memory => t.dl1_latency + t.l2_latency + t.memory_latency,
                    };
                    iss + 1 + lat
                }
                OpClass::Store => {
                    acts.stores += 1;
                    if cfg.dl1_stride_prefetch {
                        prefetcher.observe(&mut caches, inst.data_block as i64);
                    }
                    // Stores complete once the address is generated; the
                    // data drains from the store queue after commit.
                    caches.access_data(inst.data_block as u64);
                    iss + 1
                }
            };

            // ---------------- commit (in order) ----------------
            let mut cm = (complete + 1).max(last_commit);
            if cm == last_commit && committed_this_cycle >= cfg.commit_width() {
                cm += 1;
            }
            if cm > last_commit {
                committed_this_cycle = 0;
            }
            committed_this_cycle += 1;
            last_commit = cm;
            final_commit = cm;

            // ---------------- releases ----------------
            rob.release_at(cm);
            match inst.op {
                OpClass::FixedPoint | OpClass::Load => gpr.release_at(cm),
                OpClass::FloatingPoint => fpr.release_at(cm),
                OpClass::Branch => spr.release_at(cm),
                OpClass::Store => {}
            }
            match inst.op {
                OpClass::FixedPoint => resv_fx.release_at(iss + 1),
                OpClass::FloatingPoint => resv_fp.release_at(iss + 1),
                OpClass::Branch => resv_br.release_at(iss + 1),
                OpClass::Load | OpClass::Store => lsq.release_at(cm),
            }
            if inst.op == OpClass::Store {
                // Store data writes back shortly after commit.
                sq.release_at(cm + 2);
            }

            // ---------------- control flow ----------------
            if inst.op == OpClass::Branch {
                acts.branches += 1;
                let correct = bht.predict_and_update(inst.branch_site as u64, inst.taken);
                if !correct {
                    // Redirect: fetch resumes after the branch resolves.
                    redirect_ready = redirect_ready.max(complete + 1);
                } else if inst.taken {
                    // Correctly predicted taken branch still ends the
                    // fetch group (one-cycle fetch bubble).
                    fetched_this_cycle = cfg.decode_width;
                }
            }

            match inst.op {
                OpClass::FixedPoint => acts.fx_ops += 1,
                OpClass::FloatingPoint => acts.fp_ops += 1,
                _ => {}
            }

            complete_ring[i % DEP_WINDOW] = complete;
        }

        acts.instructions = (trace.len() - warmup_insts) as u64;
        // One registry update per run (never per instruction) keeps the
        // accounting overhead invisible next to the simulation itself.
        udse_obs::metrics::counter("sim.runs").inc();
        udse_obs::metrics::counter("sim.instructions").add(trace.len() as u64);
        acts.cycles = final_commit.saturating_sub(warmup_commit).max(1);
        acts.il1_accesses = caches.il1().accesses();
        acts.il1_misses = caches.il1().misses();
        acts.dl1_accesses = caches.dl1().accesses();
        acts.dl1_misses = caches.dl1().misses();
        acts.l2_accesses = caches.l2().accesses();
        acts.l2_misses = caches.l2().misses();
        acts.bht_lookups = bht.lookups();
        acts.mispredicts = bht.mispredicts();
        warmup_snapshot.subtract_from(&mut acts);

        let power = PowerModel::new(cfg).evaluate(&acts);
        SimResult::new(cfg, &acts, power, stalls)
    }
}

/// Counter values at the warmup boundary, subtracted from the final
/// counts so results describe only the measured region. Shared with the
/// streamed engine path (`stream.rs`), which captures the same fields
/// from its own running counters at the same loop position.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WarmupSnapshot {
    pub(crate) fx_ops: u64,
    pub(crate) fp_ops: u64,
    pub(crate) loads: u64,
    pub(crate) stores: u64,
    pub(crate) branches: u64,
    pub(crate) il1_accesses: u64,
    pub(crate) il1_misses: u64,
    pub(crate) dl1_accesses: u64,
    pub(crate) dl1_misses: u64,
    pub(crate) l2_accesses: u64,
    pub(crate) l2_misses: u64,
    pub(crate) bht_lookups: u64,
    pub(crate) mispredicts: u64,
}

impl WarmupSnapshot {
    fn capture(acts: &ActivityCounts, caches: &CacheHierarchy, bht: &BhtPredictor) -> Self {
        WarmupSnapshot {
            fx_ops: acts.fx_ops,
            fp_ops: acts.fp_ops,
            loads: acts.loads,
            stores: acts.stores,
            branches: acts.branches,
            il1_accesses: caches.il1().accesses(),
            il1_misses: caches.il1().misses(),
            dl1_accesses: caches.dl1().accesses(),
            dl1_misses: caches.dl1().misses(),
            l2_accesses: caches.l2().accesses(),
            l2_misses: caches.l2().misses(),
            bht_lookups: bht.lookups(),
            mispredicts: bht.mispredicts(),
        }
    }

    pub(crate) fn subtract_from(&self, acts: &mut ActivityCounts) {
        acts.fx_ops -= self.fx_ops;
        acts.fp_ops -= self.fp_ops;
        acts.loads -= self.loads;
        acts.stores -= self.stores;
        acts.branches -= self.branches;
        acts.il1_accesses -= self.il1_accesses;
        acts.il1_misses -= self.il1_misses;
        acts.dl1_accesses -= self.dl1_accesses;
        acts.dl1_misses -= self.dl1_misses;
        acts.l2_accesses -= self.l2_accesses;
        acts.l2_misses -= self.l2_misses;
        acts.bht_lookups -= self.bht_lookups;
        acts.mispredicts -= self.mispredicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udse_trace::{Benchmark, InstructionMix, TraceGenerator, WorkloadProfile};

    fn synthetic_profile() -> WorkloadProfile {
        let mut p = Benchmark::Applu.profile();
        p.mix = InstructionMix::new(0.94, 0.0, 0.02, 0.02, 0.02);
        p.dep_mean = 25.0;
        p.branch_entropy = 0.01;
        p.hard_branch_frac = 0.0;
        p.data_footprint = 64;
        p.data_alpha = 2.0;
        p.data_cold_frac = 0.0;
        p.data_far_band = None;
        p.code_footprint = 8;
        p.code_alpha = 2.0;
        p.pointer_chase_frac = 0.0;
        p
    }

    fn synthetic_trace(len: usize) -> Trace {
        let gen = TraceGenerator::with_profile(synthetic_profile(), 1);
        Trace::from_instructions(Benchmark::Applu, gen.take(len).collect())
    }

    fn relaxed_config() -> MachineConfig {
        let mut c = MachineConfig::power4_baseline();
        c.decode_width = 8;
        c.lsq_entries = 45;
        c.store_queue_entries = 42;
        c.units_per_class = 4;
        c.gpr = 130;
        c.fpr = 112;
        c.spr = 96;
        c.resv_br = 15;
        c.resv_fx = 28;
        c.resv_fp = 14;
        c
    }

    #[test]
    fn ipc_never_exceeds_decode_width() {
        let trace = synthetic_trace(20_000);
        for width in [2u32, 4, 8] {
            let mut cfg = relaxed_config();
            cfg.decode_width = width;
            let r = Simulator::new(cfg).run(&trace);
            assert!(r.ipc <= width as f64 + 1e-9, "ipc {} exceeds width {width}", r.ipc);
        }
    }

    #[test]
    fn high_ilp_trace_approaches_machine_width() {
        let trace = synthetic_trace(30_000);
        // Table 1's largest machine: rename registers (130 GPR = 98 slots)
        // become the binding constraint around IPC 3.
        let r = Simulator::new(relaxed_config()).run(&trace);
        assert!(r.ipc > 2.8, "8-wide Table-1 machine should exceed IPC 2.8, got {}", r.ipc);
        // With structural limits lifted, the dependence structure alone
        // should allow much higher ILP.
        let mut huge = relaxed_config();
        huge.gpr = 512;
        huge.fpr = 512;
        huge.spr = 512;
        huge.rob_entries = 2_048;
        huge.units_per_class = 8;
        huge.resv_fx = 256;
        huge.lsq_entries = 256;
        huge.store_queue_entries = 256;
        let r2 = Simulator::new(huge).run(&trace);
        assert!(r2.ipc > 4.5, "unconstrained machine should exceed IPC 4.5, got {}", r2.ipc);
        assert!(r2.ipc > r.ipc);
    }

    #[test]
    fn unpredictable_branches_hurt_more_on_deep_pipelines() {
        let mut hard = synthetic_profile();
        hard.mix = InstructionMix::new(0.80, 0.0, 0.02, 0.02, 0.16);
        hard.hard_branch_frac = 1.0;
        let gen = TraceGenerator::with_profile(hard, 2);
        let trace = Trace::from_instructions(Benchmark::Gcc, gen.take(20_000).collect());
        let mut deep = MachineConfig::power4_baseline();
        deep.fo4_per_stage = 12;
        let mut shallow = MachineConfig::power4_baseline();
        shallow.fo4_per_stage = 30;
        let rd = Simulator::new(deep).run(&trace);
        let rs = Simulator::new(shallow).run(&trace);
        assert!(rd.mispredict_rate > 0.2, "hard branches should mispredict often");
        // Deep pipelines lose far more IPC to each flush.
        assert!(rd.ipc < rs.ipc * 0.8, "deep {} vs shallow {}", rd.ipc, rs.ipc);
    }

    #[test]
    fn tiny_register_file_throttles_ilp() {
        let trace = synthetic_trace(20_000);
        let rich = Simulator::new(relaxed_config()).run(&trace);
        let mut starved_cfg = relaxed_config();
        starved_cfg.gpr = 36; // only 4 rename registers beyond architected
        let starved = Simulator::new(starved_cfg).run(&trace);
        assert!(starved.ipc < rich.ipc * 0.7, "starved {} vs rich {}", starved.ipc, rich.ipc);
    }

    #[test]
    fn tiny_reservation_stations_throttle_ilp() {
        let trace = synthetic_trace(20_000);
        let rich = Simulator::new(relaxed_config()).run(&trace);
        let mut small = relaxed_config();
        small.resv_fx = 2;
        let r = Simulator::new(small).run(&trace);
        assert!(r.ipc < rich.ipc, "RS pressure must cost IPC");
    }

    #[test]
    fn in_order_mode_serializes_issue() {
        let trace = synthetic_trace(20_000);
        let ooo = Simulator::new(relaxed_config()).run(&trace);
        let mut cfg = relaxed_config();
        cfg.in_order = true;
        let ino = Simulator::new(cfg).run(&trace);
        assert!(ino.ipc <= ooo.ipc + 1e-9);
    }

    #[test]
    fn warmup_discards_cold_start() {
        // A fresh cache hierarchy makes early instructions slow; measuring
        // only the post-warmup region should report equal or higher bips.
        let trace = Trace::generate(Benchmark::Twolf, 20_000, 3);
        let sim = Simulator::new(MachineConfig::power4_baseline());
        let cold = sim.run(&trace);
        let warm = sim.run_with_warmup(&trace, 10_000);
        assert!(warm.instructions == 10_000);
        assert!(warm.bips >= cold.bips * 0.95);
    }

    #[test]
    #[should_panic(expected = "warmup must leave")]
    fn warmup_longer_than_trace_panics() {
        let trace = synthetic_trace(100);
        let _ = Simulator::new(MachineConfig::power4_baseline()).run_with_warmup(&trace, 100);
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn invalid_config_panics() {
        let mut cfg = MachineConfig::power4_baseline();
        cfg.gpr = 0;
        let _ = Simulator::new(cfg);
    }

    #[test]
    fn pointer_chasing_serializes_memory() {
        let mut chasing = synthetic_profile();
        chasing.mix = InstructionMix::new(0.55, 0.0, 0.35, 0.05, 0.05);
        chasing.data_footprint = 32_768;
        chasing.data_alpha = 0.25;
        let mut independent = chasing.clone();
        chasing.pointer_chase_frac = 0.9;
        independent.pointer_chase_frac = 0.0;
        let mk = |p: WorkloadProfile| {
            let gen = TraceGenerator::with_profile(p, 7);
            Trace::from_instructions(Benchmark::Mcf, gen.take(30_000).collect())
        };
        let sim = Simulator::new(MachineConfig::power4_baseline());
        let r_chase = sim.run(&mk(chasing));
        let r_indep = sim.run(&mk(independent));
        // Independent misses overlap (memory-level parallelism); chained
        // ones cannot.
        assert!(
            r_chase.ipc < r_indep.ipc * 0.85,
            "chasing {} vs independent {}",
            r_chase.ipc,
            r_indep.ipc
        );
    }

    #[test]
    fn next_line_prefetch_reduces_icache_misses() {
        let trace = Trace::generate(Benchmark::Mesa, 40_000, 2);
        let base = MachineConfig::power4_baseline();
        let mut pf = base;
        pf.il1_next_line_prefetch = true;
        let r0 = Simulator::new(base).run(&trace);
        let r1 = Simulator::new(pf).run(&trace);
        assert!(
            r1.il1_miss_rate < r0.il1_miss_rate * 0.95,
            "prefetch {} vs base {}",
            r1.il1_miss_rate,
            r0.il1_miss_rate
        );
        assert!(r1.bips >= r0.bips);
    }

    #[test]
    fn stride_prefetch_helps_streaming_workload() {
        // A heavily streaming profile touches fresh blocks sequentially —
        // the stride detector's ideal case.
        let mut p = synthetic_profile();
        p.mix = InstructionMix::new(0.55, 0.0, 0.40, 0.02, 0.03);
        p.data_footprint = 60_000;
        p.data_cold_frac = 0.95;
        let gen = TraceGenerator::with_profile(p, 3);
        let trace = Trace::from_instructions(Benchmark::Applu, gen.take(30_000).collect());
        let base = MachineConfig::power4_baseline();
        let mut pf = base;
        pf.dl1_stride_prefetch = true;
        let r0 = Simulator::new(base).run(&trace);
        let r1 = Simulator::new(pf).run(&trace);
        assert!(
            r1.dl1_miss_rate < r0.dl1_miss_rate * 0.5,
            "stride prefetch {} vs base {}",
            r1.dl1_miss_rate,
            r0.dl1_miss_rate
        );
        assert!(r1.bips > r0.bips);
    }

    #[test]
    fn two_bit_predictor_reduces_mispredicts() {
        // The classic 2-bit advantage: strongly biased branches whose
        // occasional anomalous outcome should not flip the prediction.
        // (On aliased tables with near-random branches the two designs
        // tie; the hysteresis unit test in `predictor` covers periodic
        // patterns.) Steady state only: cold 2-bit counters need two
        // updates to learn, so warmup is excluded.
        let mut p = synthetic_profile();
        p.mix = InstructionMix::new(0.78, 0.0, 0.02, 0.02, 0.18);
        p.branch_sites = 64;
        p.branch_entropy = 0.10;
        p.hard_branch_frac = 0.0;
        let gen = TraceGenerator::with_profile(p, 11);
        let trace = Trace::from_instructions(Benchmark::Gcc, gen.take(120_000).collect());
        let base = MachineConfig::power4_baseline();
        let mut two = base;
        two.bht_counter_bits = 2;
        let r1 = Simulator::new(base).run_with_warmup(&trace, 60_000);
        let r2 = Simulator::new(two).run_with_warmup(&trace, 60_000);
        assert!(
            r2.mispredict_rate < r1.mispredict_rate,
            "2-bit {} vs 1-bit {}",
            r2.mispredict_rate,
            r1.mispredict_rate
        );
    }

    #[test]
    fn stall_attribution_identifies_register_starvation() {
        let trace = synthetic_trace(20_000);
        let mut starved = relaxed_config();
        starved.gpr = 36;
        let r = Simulator::new(starved).run(&trace);
        assert_eq!(r.stalls.dominant(), "registers");
        assert!(r.stalls.registers > 0);
    }

    #[test]
    fn stall_attribution_identifies_redirect_pressure() {
        let mut hard = synthetic_profile();
        hard.mix = InstructionMix::new(0.78, 0.0, 0.02, 0.02, 0.18);
        hard.hard_branch_frac = 1.0;
        let gen = TraceGenerator::with_profile(hard, 5);
        let trace = Trace::from_instructions(Benchmark::Gcc, gen.take(20_000).collect());
        let r = Simulator::new(MachineConfig::power4_baseline()).run(&trace);
        assert_eq!(r.stalls.dominant(), "redirect");
    }

    #[test]
    fn commit_is_monotone_nondecreasing_in_trace_length() {
        // Simulating a prefix takes no more cycles than the whole trace.
        let trace = synthetic_trace(10_000);
        let prefix =
            Trace::from_instructions(Benchmark::Applu, trace.instructions()[..5_000].to_vec());
        let sim = Simulator::new(MachineConfig::power4_baseline());
        let full = sim.run(&trace);
        let half = sim.run(&prefix);
        assert!(half.cycles < full.cycles);
    }
}
