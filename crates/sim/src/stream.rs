//! The streamed cycle engine: `Simulator::run_streamed` consumes
//! preflighted traces and resolved outcome streams instead of replaying
//! caches and the branch predictor per design.
//!
//! Beyond swapping state machines for table lookups, the hot loop is
//! tightened two ways the direct path cannot be:
//!
//! - **Monotone release queues.** Six of the engine's occupancy pools
//!   (ROB, the three register files, LSQ, store queue) release entries
//!   at commit-derived cycles, and commit is nondecreasing in program
//!   order. Their release multisets are therefore always pushed in
//!   sorted order, so a binary min-heap degenerates to a FIFO ring:
//!   [`MonoRing`] replaces `O(log n)` sift operations with one read and
//!   one write per instruction, bitwise-identically (the front of the
//!   ring *is* the heap minimum, and the ring is kept brim-full of
//!   release-0 placeholders so the not-full fast path and the index
//!   wraparound both compile to conditional moves, not branches).
//! - **Slot-scan pools.** The reservation stations and functional units
//!   release at `issue + 1`, which is not monotone under out-of-order
//!   issue, but their capacities are tiny (Table 1 tops out at 28
//!   entries). [`SlotPool`] models each entry's release cycle in a flat
//!   array and finds the minimum by a branchless fixed-trip scan over
//!   `release << 8 | slot` keys — no data-dependent branches to
//!   mispredict, and equivalent to the heap because a pool with
//!   balanced acquire/release pairs is exactly "take the entry with the
//!   earliest release" (unused entries sit at release 0, reproducing
//!   the heap's not-full fast path).
//!
//! All per-run state lives in a reusable [`StreamScratch`], so
//! steady-state runs are allocation-free (pinned by
//! `tests/no_alloc_stream.rs`).

use crate::config::MachineConfig;
use crate::engine::{Simulator, WarmupSnapshot, DEP_WINDOW};
use crate::power::PowerModel;
use crate::preflight::{BranchStream, CacheStreams, TracePreflight, OUTCOME_L1};
use crate::result::{ActivityCounts, SimResult, StallBreakdown};

/// A FIFO ring standing in for a min-heap whose pushes are known to be
/// nondecreasing: the front entry is always the minimum release cycle.
///
/// The ring is kept permanently full: `reset` seeds `capacity` entries
/// at release 0 ("free since forever"), so `acquire` always pops
/// (`max(0, cycle) = cycle` reproduces the heap's not-full behaviour).
/// The engine strictly alternates acquire/release on each pool within
/// one instruction, so the slot a pop vacates is exactly where the
/// matching push belongs — `release_at` rewrites that slot in place and
/// no separate tail index exists. With occupancy pinned at capacity
/// there is no emptiness branch, and the head wraparound is a select
/// the compiler lowers to a conditional move — the data-dependent
/// mispredicts of a sifting heap (or of a sometimes-wrapping ring)
/// never happen.
#[derive(Debug, Default)]
struct MonoRing {
    buf: Vec<u64>,
    head: usize,
    /// Slot vacated by the last `acquire`, refilled by `release_at`.
    pending: usize,
    #[cfg(debug_assertions)]
    last_push: u64,
}

impl MonoRing {
    fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "resource pool capacity must be positive");
        self.buf.clear();
        self.buf.resize(capacity, 0);
        self.head = 0;
        self.pending = 0;
        #[cfg(debug_assertions)]
        {
            self.last_push = 0;
        }
    }

    #[inline]
    fn acquire(&mut self, cycle: u64) -> u64 {
        let r = self.buf[self.head];
        self.pending = self.head;
        let h = self.head + 1;
        self.head = if h == self.buf.len() { 0 } else { h };
        r.max(cycle)
    }

    #[inline]
    fn release_at(&mut self, cycle: u64) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(cycle >= self.last_push, "MonoRing requires nondecreasing releases");
            self.last_push = cycle;
        }
        self.buf[self.pending] = cycle;
    }
}

/// A small occupancy pool tracked as one release cycle per entry.
/// Entries start at release 0 ("free since forever"), which reproduces
/// a standard min-heap's behaviour before the pool first fills.
///
/// Each slot stores `release << 8 | slot_index`, so a plain `min` scan
/// yields both the earliest release and which slot holds it in one
/// fixed-trip, branchless pass (ties break toward the lowest index,
/// which is immaterial: only the multiset of release times feeds the
/// model). The engine always pairs one `acquire` (find the minimum)
/// with one `release_at` (overwrite that slot), so the multiset of
/// release times — hence every acquired cycle — is identical to the
/// heap's pop + push. A sifting heap's data-dependent compare branches
/// mispredict constantly on these tiny pools; the scan has none.
#[derive(Debug, Default)]
struct SlotPool {
    slots: Vec<u64>,
    /// Slot found by the last `acquire`, overwritten by `release_at`.
    pending: usize,
}

impl SlotPool {
    fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "resource pool capacity must be positive");
        assert!(capacity <= 256, "SlotPool packs the slot index into 8 bits");
        self.slots.clear();
        self.slots.extend(0..capacity as u64);
        self.pending = 0;
    }

    #[inline]
    fn acquire(&mut self, cycle: u64) -> u64 {
        let mut best = self.slots[0];
        for &s in &self.slots[1..] {
            best = best.min(s);
        }
        self.pending = (best & 0xFF) as usize;
        (best >> 8).max(cycle)
    }

    #[inline]
    fn release_at(&mut self, cycle: u64) {
        debug_assert!(cycle < 1 << 56, "release cycle overflows the packed slot key");
        self.slots[self.pending] = cycle << 8 | self.pending as u64;
    }
}

/// Reusable per-run state for the streamed engine: every occupancy pool
/// plus the completion ring. Construct once (allocates), then any number
/// of [`Simulator::run_streamed_with`] calls against configurations of
/// the same or smaller capacities run without touching the heap.
#[derive(Debug)]
pub struct StreamScratch {
    rob: MonoRing,
    gpr: MonoRing,
    fpr: MonoRing,
    spr: MonoRing,
    lsq: MonoRing,
    sq: MonoRing,
    resv_fx: SlotPool,
    resv_fp: SlotPool,
    resv_br: SlotPool,
    fu_fx: SlotPool,
    fu_fp: SlotPool,
    fu_ls: SlotPool,
    fu_br: SlotPool,
    /// Fixed-size so ring indexing is a constant mask the compiler can
    /// prove in-bounds.
    complete_ring: Box<[u64; DEP_WINDOW]>,
}

impl Default for StreamScratch {
    fn default() -> Self {
        StreamScratch {
            rob: MonoRing::default(),
            gpr: MonoRing::default(),
            fpr: MonoRing::default(),
            spr: MonoRing::default(),
            lsq: MonoRing::default(),
            sq: MonoRing::default(),
            resv_fx: SlotPool::default(),
            resv_fp: SlotPool::default(),
            resv_br: SlotPool::default(),
            fu_fx: SlotPool::default(),
            fu_fp: SlotPool::default(),
            fu_ls: SlotPool::default(),
            fu_br: SlotPool::default(),
            complete_ring: Box::new([0u64; DEP_WINDOW]),
        }
    }
}

impl StreamScratch {
    /// Scratch sized for `config` (validated by the caller).
    pub fn new(config: &MachineConfig) -> Self {
        let mut s = StreamScratch::default();
        s.reset(config);
        s
    }

    /// Resizes and zeroes all pools for `config`. Only grows
    /// allocations; re-resetting for the same configuration is
    /// allocation-free.
    pub fn reset(&mut self, config: &MachineConfig) {
        self.rob.reset(config.rob_entries as usize);
        self.gpr.reset((config.gpr - 32) as usize);
        self.fpr.reset((config.fpr - 32) as usize);
        self.spr.reset((config.spr - 8) as usize);
        self.lsq.reset(config.lsq_entries as usize);
        self.sq.reset(config.store_queue_entries as usize);
        self.resv_fx.reset(config.resv_fx as usize);
        self.resv_fp.reset(config.resv_fp as usize);
        self.resv_br.reset(config.resv_br as usize);
        let units = config.units_per_class as usize;
        self.fu_fx.reset(units);
        self.fu_fp.reset(units);
        self.fu_ls.reset(units);
        self.fu_br.reset(units);
        self.complete_ring.fill(0);
    }
}

/// Running cache/BHT counters the streamed path derives from outcome
/// events (the direct path reads them off the live state machines).
#[derive(Debug, Clone, Copy, Default)]
struct StreamCounts {
    il1_accesses: u64,
    il1_misses: u64,
    dl1_accesses: u64,
    dl1_misses: u64,
    l2_accesses: u64,
    l2_misses: u64,
    bht_lookups: u64,
    mispredicts: u64,
}

impl Simulator {
    /// Simulates a preflighted trace against resolved cache and branch
    /// outcome streams, discarding statistics for the first
    /// `warmup_insts` instructions. Produces a [`SimResult`]
    /// bitwise-identical to
    /// [`Simulator::run_with_warmup`] on the original trace, provided the
    /// streams were resolved for this configuration's
    /// [`crate::CacheSubConfig`] / [`crate::BhtSubConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `warmup_insts >= pre.len()` or if the stream event
    /// counts do not match the preflight (streams resolved from a
    /// different trace).
    ///
    /// # Examples
    ///
    /// ```
    /// use udse_sim::{
    ///     BhtSubConfig, BranchStream, CacheStreams, CacheSubConfig, MachineConfig, Simulator,
    ///     TracePreflight,
    /// };
    /// use udse_trace::{Benchmark, Trace};
    ///
    /// let trace = Trace::generate(Benchmark::Gzip, 2_000, 1);
    /// let cfg = MachineConfig::power4_baseline();
    /// let pre = TracePreflight::of(&trace);
    /// let cache = CacheStreams::resolve(&pre, &CacheSubConfig::of(&cfg));
    /// let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(&cfg));
    /// let sim = Simulator::new(cfg);
    /// let streamed = sim.run_streamed(&pre, &cache, &bht, 500);
    /// assert_eq!(streamed, sim.run_with_warmup(&trace, 500));
    /// ```
    pub fn run_streamed(
        &self,
        pre: &TracePreflight,
        cache: &CacheStreams,
        branches: &BranchStream,
        warmup_insts: usize,
    ) -> SimResult {
        let mut scratch = StreamScratch::new(self.config());
        self.run_streamed_with(pre, cache, branches, warmup_insts, &mut scratch)
    }

    /// [`Simulator::run_streamed`] against caller-owned scratch, for
    /// allocation-free steady state across many runs.
    pub fn run_streamed_with(
        &self,
        pre: &TracePreflight,
        cache: &CacheStreams,
        branches: &BranchStream,
        warmup_insts: usize,
        scratch: &mut StreamScratch,
    ) -> SimResult {
        assert!(warmup_insts < pre.len(), "warmup must leave at least one measured instruction");
        assert_eq!(cache.code().len(), pre.code_events(), "cache stream mismatches preflight");
        assert_eq!(cache.data().len(), pre.data_events(), "cache stream mismatches preflight");
        assert_eq!(
            branches.correct().len(),
            pre.branch_events(),
            "branch stream mismatches preflight"
        );
        let cfg = self.config();
        let t = cfg.timing();
        scratch.reset(cfg);

        // Outcome-indexed latency tables replacing the per-access match
        // on `AccessOutcome`.
        let code_penalty = [0u64, t.l2_latency, t.l2_latency + t.memory_latency];
        let load_latency = [
            t.dl1_latency,
            t.dl1_latency + t.l2_latency,
            t.dl1_latency + t.l2_latency + t.memory_latency,
        ];
        let dispatch_width = cfg.dispatch_width();
        let commit_width = cfg.commit_width();

        let packed = pre.packed();
        let code_events = cache.code();
        let data_events = cache.data();
        let branch_events = branches.correct();
        let (mut cc, mut dc, mut bc) = (0usize, 0usize, 0usize);

        let mut fetch_cycle: u64 = 0;
        let mut fetched_this_cycle: u32 = 0;
        let mut redirect_ready: u64 = 0;
        let mut last_dispatch: u64 = 0;
        let mut dispatched_this_cycle: u32 = 0;
        let mut last_issue: u64 = 0;
        let mut last_commit: u64 = 0;
        let mut committed_this_cycle: u32 = 0;

        let mut acts = ActivityCounts::default();
        let mut stalls = StallBreakdown::default();
        let mut counts = StreamCounts::default();
        let mut final_commit: u64 = 0;
        let mut warmup_commit: u64 = 0;
        let mut warmup_snapshot = WarmupSnapshot::default();

        let in_order = cfg.in_order;
        let decode_width = cfg.decode_width;
        const MASK: usize = DEP_WINDOW - 1;

        // Shared pipeline steps, expanded inside each opcode arm so the
        // loop body takes exactly one data-dependent branch per
        // instruction (the opcode dispatch) instead of one per stage.
        // Every macro performs the same arithmetic, in the same order,
        // as the staged form in `engine.rs` — that is what keeps the
        // result bitwise-identical.
        macro_rules! pool_acquire {
            ($pool:ident, $stall:ident, $d:ident) => {{
                let before = $d;
                $d = scratch.$pool.acquire($d);
                stalls.$stall += $d - before;
            }};
        }
        macro_rules! dispatch_done {
            ($d:ident) => {{
                // `$d >= last_dispatch` always holds; a select compiles
                // to a conditional move instead of a branch.
                dispatched_this_cycle =
                    if $d > last_dispatch { 1 } else { dispatched_this_cycle + 1 };
                last_dispatch = $d;
            }};
        }
        macro_rules! readiness {
            ($i:ident, $d:ident, $m:ident) => {{
                // Branchless: an out-of-window distance contributes 0 to
                // the max instead of skipping the lookup, so the two
                // data-dependent "has a dependency" branches disappear.
                // The masked index is always in bounds; the stale slot it
                // reads when the distance is invalid is masked away.
                let horizon = $i.min(DEP_WINDOW);
                let s1 = ($m >> 16 & 0xFFFF) as usize;
                let v1 = ((s1 > 0 && s1 <= horizon) as u64).wrapping_neg();
                let p1 = scratch.complete_ring[$i.wrapping_sub(s1) & MASK];
                let s2 = ($m >> 32 & 0xFFFF) as usize;
                let v2 = ((s2 > 0 && s2 <= horizon) as u64).wrapping_neg();
                let p2 = scratch.complete_ring[$i.wrapping_sub(s2) & MASK];
                ($d + 1).max(p1 & v1).max(p2 & v2)
            }};
        }
        macro_rules! issue {
            ($fu:ident, $ready:expr) => {{
                let mut iss = scratch.$fu.acquire($ready);
                if in_order {
                    iss = iss.max(last_issue);
                }
                scratch.$fu.release_at(iss + 1);
                last_issue = iss;
                iss
            }};
        }
        macro_rules! data_access {
            () => {{
                let ev = data_events[dc] as usize;
                dc += 1;
                counts.dl1_accesses += 1;
                // Branchless event accounting: a hit adds zero to the
                // miss counters rather than branching around them.
                let missed = (ev != OUTCOME_L1 as usize) as u64;
                counts.dl1_misses += missed;
                counts.l2_accesses += missed;
                counts.l2_misses += (ev == 2) as u64;
                ev
            }};
        }
        macro_rules! commit {
            ($complete:expr) => {{
                let mut cm = ($complete + 1).max(last_commit);
                cm += (cm == last_commit && committed_this_cycle >= commit_width) as u64;
                committed_this_cycle = if cm > last_commit { 1 } else { committed_this_cycle + 1 };
                last_commit = cm;
                final_commit = cm;
                cm
            }};
        }

        for (i, &meta) in packed.iter().enumerate() {
            if i == warmup_insts && i > 0 {
                warmup_commit = last_commit;
                warmup_snapshot = snapshot(&acts, &counts);
            }
            // ---------------- fetch ----------------
            // Branchless redirect: `fc >= fetch_cycle` always holds, so
            // the stall delta is 0 exactly when no redirect applies and
            // the reset of the fetch group is a select.
            let fc0 = fetch_cycle.max(redirect_ready);
            let redirect_delta = fc0 - fetch_cycle;
            stalls.redirect += redirect_delta;
            fetched_this_cycle = if redirect_delta > 0 { 0 } else { fetched_this_cycle };
            let mut fc = fc0;
            if meta & 8 != 0 {
                let ev = code_events[cc] as usize;
                cc += 1;
                counts.il1_accesses += 1;
                // Branchless: a hit has penalty 0 and adds nothing.
                let missed = (ev != OUTCOME_L1 as usize) as u64;
                counts.il1_misses += missed;
                counts.l2_accesses += missed;
                counts.l2_misses += (ev == 2) as u64;
                let miss_penalty = code_penalty[ev];
                stalls.icache += miss_penalty;
                fc += miss_penalty;
                fetched_this_cycle *= (ev == OUTCOME_L1 as usize) as u32;
            }
            fc += (fetched_this_cycle >= decode_width) as u64;
            fetched_this_cycle =
                if fetched_this_cycle >= decode_width { 1 } else { fetched_this_cycle + 1 };
            fetch_cycle = fc;

            // ---------------- dispatch (shared prefix) ----------------
            let mut d = (fc + t.front_stages).max(last_dispatch);
            d += (d == last_dispatch && dispatched_this_cycle >= dispatch_width) as u64;
            pool_acquire!(rob, rob, d);

            // ---------------- per-opcode pipeline ----------------
            let complete = match meta & 7 {
                0 => {
                    pool_acquire!(gpr, registers, d);
                    pool_acquire!(resv_fx, reservations, d);
                    dispatch_done!(d);
                    let ready = readiness!(i, d, meta);
                    let iss = issue!(fu_fx, ready);
                    let complete = iss + t.fx_latency;
                    let cm = commit!(complete);
                    scratch.rob.release_at(cm);
                    scratch.gpr.release_at(cm);
                    scratch.resv_fx.release_at(iss + 1);
                    acts.fx_ops += 1;
                    complete
                }
                1 => {
                    pool_acquire!(fpr, registers, d);
                    pool_acquire!(resv_fp, reservations, d);
                    dispatch_done!(d);
                    let ready = readiness!(i, d, meta);
                    let iss = issue!(fu_fp, ready);
                    let complete = iss + t.fp_latency;
                    let cm = commit!(complete);
                    scratch.rob.release_at(cm);
                    scratch.fpr.release_at(cm);
                    scratch.resv_fp.release_at(iss + 1);
                    acts.fp_ops += 1;
                    complete
                }
                2 => {
                    pool_acquire!(gpr, registers, d);
                    pool_acquire!(lsq, lsq, d);
                    dispatch_done!(d);
                    let ready = readiness!(i, d, meta);
                    let iss = issue!(fu_ls, ready);
                    acts.loads += 1;
                    let ev = data_access!();
                    let complete = iss + 1 + load_latency[ev];
                    let cm = commit!(complete);
                    scratch.rob.release_at(cm);
                    scratch.gpr.release_at(cm);
                    scratch.lsq.release_at(cm);
                    complete
                }
                3 => {
                    pool_acquire!(lsq, lsq, d);
                    pool_acquire!(sq, store_queue, d);
                    dispatch_done!(d);
                    let ready = readiness!(i, d, meta);
                    let iss = issue!(fu_ls, ready);
                    acts.stores += 1;
                    let _ev = data_access!();
                    // Stores complete once the address is generated; the
                    // data drains from the store queue after commit.
                    let complete = iss + 1;
                    let cm = commit!(complete);
                    scratch.rob.release_at(cm);
                    scratch.lsq.release_at(cm);
                    scratch.sq.release_at(cm + 2);
                    complete
                }
                _ => {
                    pool_acquire!(spr, registers, d);
                    pool_acquire!(resv_br, reservations, d);
                    dispatch_done!(d);
                    let ready = readiness!(i, d, meta);
                    let iss = issue!(fu_br, ready);
                    let complete = iss + t.fx_latency;
                    let cm = commit!(complete);
                    scratch.rob.release_at(cm);
                    scratch.spr.release_at(cm);
                    scratch.resv_br.release_at(iss + 1);
                    acts.branches += 1;
                    counts.bht_lookups += 1;
                    let correct = branch_events[bc];
                    bc += 1;
                    if !correct {
                        counts.mispredicts += 1;
                        // Redirect: fetch resumes after the branch resolves.
                        redirect_ready = redirect_ready.max(complete + 1);
                    } else if meta & 16 != 0 {
                        // Correctly predicted taken branch still ends the
                        // fetch group (one-cycle fetch bubble).
                        fetched_this_cycle = decode_width;
                    }
                    complete
                }
            };

            scratch.complete_ring[i & MASK] = complete;
        }

        acts.instructions = (pre.len() - warmup_insts) as u64;
        // Same per-run accounting as the direct path, so manifests see
        // one consistent pair of counters whichever engine ran.
        udse_obs::metrics::counter("sim.runs").inc();
        udse_obs::metrics::counter("sim.instructions").add(pre.len() as u64);
        acts.cycles = final_commit.saturating_sub(warmup_commit).max(1);
        acts.il1_accesses = counts.il1_accesses;
        acts.il1_misses = counts.il1_misses;
        acts.dl1_accesses = counts.dl1_accesses;
        acts.dl1_misses = counts.dl1_misses;
        acts.l2_accesses = counts.l2_accesses;
        acts.l2_misses = counts.l2_misses;
        acts.bht_lookups = counts.bht_lookups;
        acts.mispredicts = counts.mispredicts;
        warmup_snapshot.subtract_from(&mut acts);

        let power = PowerModel::new(cfg).evaluate(&acts);
        SimResult::new(cfg, &acts, power, stalls)
    }
}

fn snapshot(acts: &ActivityCounts, counts: &StreamCounts) -> WarmupSnapshot {
    WarmupSnapshot {
        fx_ops: acts.fx_ops,
        fp_ops: acts.fp_ops,
        loads: acts.loads,
        stores: acts.stores,
        branches: acts.branches,
        il1_accesses: counts.il1_accesses,
        il1_misses: counts.il1_misses,
        dl1_accesses: counts.dl1_accesses,
        dl1_misses: counts.dl1_misses,
        l2_accesses: counts.l2_accesses,
        l2_misses: counts.l2_misses,
        bht_lookups: counts.bht_lookups,
        mispredicts: counts.mispredicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preflight::{BhtSubConfig, CacheSubConfig};
    use udse_trace::{Benchmark, Trace};

    fn artifacts(
        cfg: &MachineConfig,
        trace: &Trace,
    ) -> (TracePreflight, CacheStreams, BranchStream) {
        let pre = TracePreflight::of(trace);
        let cache = CacheStreams::resolve(&pre, &CacheSubConfig::of(cfg));
        let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(cfg));
        (pre, cache, bht)
    }

    #[test]
    fn streamed_matches_direct_on_baseline() {
        let trace = Trace::generate(Benchmark::Twolf, 8_000, 3);
        let cfg = MachineConfig::power4_baseline();
        let (pre, cache, bht) = artifacts(&cfg, &trace);
        let sim = Simulator::new(cfg);
        for warmup in [0usize, 1, 2_000, 7_999] {
            let direct = sim.run_with_warmup(&trace, warmup);
            let streamed = sim.run_streamed(&pre, &cache, &bht, warmup);
            assert_eq!(streamed, direct, "warmup {warmup}");
        }
    }

    #[test]
    fn streamed_matches_direct_with_prefetch_and_two_bit_bht() {
        let trace = Trace::generate(Benchmark::Mcf, 8_000, 11);
        let mut cfg = MachineConfig::power4_baseline();
        cfg.il1_next_line_prefetch = true;
        cfg.dl1_stride_prefetch = true;
        cfg.bht_counter_bits = 2;
        cfg.in_order = true;
        let (pre, cache, bht) = artifacts(&cfg, &trace);
        let sim = Simulator::new(cfg);
        let direct = sim.run_with_warmup(&trace, 2_000);
        let streamed = sim.run_streamed(&pre, &cache, &bht, 2_000);
        assert_eq!(streamed, direct);
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let trace = Trace::generate(Benchmark::Gzip, 4_000, 5);
        let cfg = MachineConfig::power4_baseline();
        let (pre, cache, bht) = artifacts(&cfg, &trace);
        let sim = Simulator::new(cfg);
        let mut scratch = StreamScratch::new(sim.config());
        let a = sim.run_streamed_with(&pre, &cache, &bht, 1_000, &mut scratch);
        let b = sim.run_streamed_with(&pre, &cache, &bht, 1_000, &mut scratch);
        assert_eq!(a, b);
        // The same scratch serves a different (larger-pool) config.
        let mut wide = MachineConfig::power4_baseline();
        wide.decode_width = 8;
        wide.gpr = 130;
        let cache_w = CacheStreams::resolve(&pre, &CacheSubConfig::of(&wide));
        let bht_w = BranchStream::resolve(&pre, &BhtSubConfig::of(&wide));
        let sim_w = Simulator::new(wide);
        let direct = sim_w.run_with_warmup(&trace, 1_000);
        let streamed = sim_w.run_streamed_with(&pre, &cache_w, &bht_w, 1_000, &mut scratch);
        assert_eq!(streamed, direct);
    }

    #[test]
    #[should_panic(expected = "mismatches preflight")]
    fn mismatched_streams_panic() {
        let trace = Trace::generate(Benchmark::Gzip, 2_000, 5);
        let other = Trace::generate(Benchmark::Mcf, 3_000, 5);
        let cfg = MachineConfig::power4_baseline();
        let pre = TracePreflight::of(&trace);
        let pre_other = TracePreflight::of(&other);
        let cache = CacheStreams::resolve(&pre_other, &CacheSubConfig::of(&cfg));
        let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(&cfg));
        let _ = Simulator::new(cfg).run_streamed(&pre, &cache, &bht, 100);
    }

    #[test]
    #[should_panic(expected = "warmup must leave")]
    fn streamed_warmup_longer_than_trace_panics() {
        let trace = Trace::generate(Benchmark::Gzip, 200, 5);
        let cfg = MachineConfig::power4_baseline();
        let (pre, cache, bht) = artifacts(&cfg, &trace);
        let _ = Simulator::new(cfg).run_streamed(&pre, &cache, &bht, 200);
    }
}
