use crate::config::MachineConfig;
use crate::power::PowerBreakdown;

/// Raw event counts accumulated by the timing simulation; the interface
/// between the scheduling engine and the power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityCounts {
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles to commit the last instruction.
    pub cycles: u64,
    /// Fixed-point operations.
    pub fx_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// I-L1 lookups.
    pub il1_accesses: u64,
    /// I-L1 misses.
    pub il1_misses: u64,
    /// D-L1 lookups.
    pub dl1_accesses: u64,
    /// D-L1 misses.
    pub dl1_misses: u64,
    /// L2 lookups.
    pub l2_accesses: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Branch predictor lookups.
    pub bht_lookups: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
}

/// Attribution of scheduling delay to machine bottlenecks, in cycle-sums
/// (the total cycles instructions were pushed back by each cause; causes
/// can overlap, so the fields do not sum to total cycles — they rank
/// bottlenecks, as a performance-counter profile would).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Fetch delayed by branch-misprediction redirects.
    pub redirect: u64,
    /// Fetch delayed by I-cache misses.
    pub icache: u64,
    /// Dispatch delayed by a full reorder buffer.
    pub rob: u64,
    /// Dispatch delayed by physical register exhaustion.
    pub registers: u64,
    /// Dispatch delayed by full reservation stations.
    pub reservations: u64,
    /// Dispatch delayed by a full load/store queue.
    pub lsq: u64,
    /// Dispatch delayed by a full store queue.
    pub store_queue: u64,
}

impl StallBreakdown {
    /// The dominant bottleneck's name (ties broken by field order), or
    /// `"none"` when no delay was recorded.
    pub fn dominant(&self) -> &'static str {
        let entries = [
            ("redirect", self.redirect),
            ("icache", self.icache),
            ("rob", self.rob),
            ("registers", self.registers),
            ("reservations", self.reservations),
            ("lsq", self.lsq),
            ("store_queue", self.store_queue),
        ];
        let (name, v) = entries.iter().max_by_key(|(_, v)| *v).expect("non-empty");
        if *v == 0 {
            "none"
        } else {
            name
        }
    }
}

/// Results of one simulation: the two responses the paper's regression
/// models predict (performance in `bips`, power in watts) plus the
/// underlying rates for analysis and calibration.
///
/// # Examples
///
/// ```
/// use udse_sim::{MachineConfig, Simulator};
/// use udse_trace::{Benchmark, Trace};
///
/// let r = Simulator::new(MachineConfig::power4_baseline())
///     .run(&Trace::generate(Benchmark::Mesa, 2_000, 1));
/// assert!(r.delay_seconds() > 0.0);
/// assert!(r.bips_cubed_per_watt() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Performance in billions of instructions per second.
    pub bips: f64,
    /// Total chip power in watts.
    pub watts: f64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions simulated.
    pub instructions: u64,
    /// I-L1 miss rate.
    pub il1_miss_rate: f64,
    /// D-L1 miss rate.
    pub dl1_miss_rate: f64,
    /// L2 (local) miss rate.
    pub l2_miss_rate: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Per-structure power decomposition.
    pub power: PowerBreakdown,
    /// Delay attribution by bottleneck.
    pub stalls: StallBreakdown,
}

/// Reference instruction count for converting throughput to the paper's
/// delay axis (seconds per one billion instructions).
const REF_INSTRUCTIONS: f64 = 1e9;

impl SimResult {
    pub(crate) fn new(
        cfg: &MachineConfig,
        acts: &ActivityCounts,
        power: PowerBreakdown,
        stalls: StallBreakdown,
    ) -> Self {
        let t = cfg.timing();
        let cycles = acts.cycles.max(1);
        let ipc = acts.instructions as f64 / cycles as f64;
        let bips = ipc * t.frequency_ghz;
        let rate = |m: u64, a: u64| if a == 0 { 0.0 } else { m as f64 / a as f64 };
        SimResult {
            bips,
            watts: power.total(),
            ipc,
            frequency_ghz: t.frequency_ghz,
            cycles,
            instructions: acts.instructions,
            il1_miss_rate: rate(acts.il1_misses, acts.il1_accesses),
            dl1_miss_rate: rate(acts.dl1_misses, acts.dl1_accesses),
            l2_miss_rate: rate(acts.l2_misses, acts.l2_accesses),
            mispredict_rate: rate(acts.mispredicts, acts.bht_lookups),
            power,
            stalls,
        }
    }

    /// Execution delay in seconds for a reference one-billion-instruction
    /// workload — the paper's delay axis (inverse throughput).
    pub fn delay_seconds(&self) -> f64 {
        REF_INSTRUCTIONS / (self.bips * 1e9)
    }

    /// The paper's power-performance efficiency metric `bips^3 / watt`
    /// (inverse energy-delay-squared, voltage invariant).
    pub fn bips_cubed_per_watt(&self) -> f64 {
        self.bips.powi(3) / self.watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_stall_named() {
        let mut s = StallBreakdown::default();
        assert_eq!(s.dominant(), "none");
        s.registers = 10;
        s.lsq = 4;
        assert_eq!(s.dominant(), "registers");
    }

    fn mk_result(ipc_num: u64, cycles: u64) -> SimResult {
        let cfg = MachineConfig::power4_baseline();
        let acts = ActivityCounts { instructions: ipc_num, cycles, ..ActivityCounts::default() };
        let power = crate::power::PowerModel::new(&cfg).evaluate(&acts);
        SimResult::new(&cfg, &acts, power, StallBreakdown::default())
    }

    #[test]
    fn bips_is_ipc_times_frequency() {
        let r = mk_result(10_000, 10_000);
        assert!((r.ipc - 1.0).abs() < 1e-12);
        assert!((r.bips - r.frequency_ghz).abs() < 1e-9);
    }

    #[test]
    fn delay_is_inverse_throughput() {
        let r = mk_result(10_000, 10_000);
        assert!((r.delay_seconds() - 1.0 / r.bips).abs() < 1e-9);
    }

    #[test]
    fn efficiency_metric_cubes_performance() {
        let r = mk_result(10_000, 10_000);
        let expected = r.bips.powi(3) / r.watts;
        assert!((r.bips_cubed_per_watt() - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_guarded() {
        let r = mk_result(0, 0);
        assert!(r.bips.is_finite());
        assert_eq!(r.ipc, 0.0);
    }
}
