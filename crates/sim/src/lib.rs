//! Cycle-approximate out-of-order superscalar processor simulator with an
//! integrated power model.
//!
//! This crate is the reproduction's stand-in for the paper's
//! Turandot/PowerTimer infrastructure (§2.1): a trace-driven,
//! POWER4-flavoured machine model parameterized by every knob in the
//! paper's Table 1 design space —
//!
//! - pipeline depth in FO4 delays per stage (frequency, misprediction
//!   penalty, and fixed-wall-clock latencies all derive from it),
//! - pipeline width (decode bandwidth, load/store + store queues,
//!   functional-unit counts),
//! - physical register files (GPR/FPR/SPR),
//! - per-class reservation stations (branch, fixed-point, floating-point),
//! - I-L1 / D-L1 / L2 cache geometry with CACTI-style latency and energy
//!   scaling.
//!
//! The timing model is a dependence-driven scheduler in the style of
//! trace-driven research timers: every instruction's fetch, dispatch,
//! issue, completion, and commit cycles are computed subject to bandwidth,
//! resource-occupancy, dependence, and control-flow constraints. The power
//! model follows PowerTimer's structure: per-access energies (superlinear
//! in width for multi-ported arrays, near-linear for clustered functional
//! units), CACTI-like `sqrt(size)` cache access energy, latch/clock power
//! that grows with pipeline depth, and capacity-proportional leakage.
//!
//! # Examples
//!
//! ```
//! use udse_sim::{MachineConfig, Simulator};
//! use udse_trace::{Benchmark, Trace};
//!
//! let config = MachineConfig::power4_baseline();
//! let trace = Trace::generate(Benchmark::Gzip, 5_000, 1);
//! let result = Simulator::new(config).run(&trace);
//! assert!(result.bips > 0.0);
//! assert!(result.watts > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cache;
mod config;
mod engine;
mod power;
mod predictor;
mod preflight;
mod resources;
mod result;
mod stream;

pub use builder::MachineConfigBuilder;
pub use cache::{AccessOutcome, CacheHierarchy, SetAssocCache};
pub use config::{ConfigError, DerivedTiming, MachineConfig};
pub use engine::Simulator;
pub use power::{PowerBreakdown, PowerModel};
pub use predictor::BhtPredictor;
pub use preflight::{
    BhtSubConfig, BranchStream, CacheStreams, CacheSubConfig, TracePreflight, OUTCOME_L1,
    OUTCOME_L2, OUTCOME_MEMORY,
};
pub use resources::ResourcePool;
pub use result::{SimResult, StallBreakdown};
pub use stream::StreamScratch;
