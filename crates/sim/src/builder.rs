//! Fluent builder for [`MachineConfig`].
//!
//! The config struct is plain data (14 design knobs plus structural
//! constants); the builder adds chained configuration starting from the
//! Table 3 baseline with validation at the end, which is the ergonomic
//! path for sweeps and examples:
//!
//! ```
//! use udse_sim::MachineConfigBuilder;
//!
//! let cfg = MachineConfigBuilder::power4_baseline()
//!     .depth_fo4(12)
//!     .width(8)
//!     .l2_kb(4096)
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.decode_width, 8);
//! assert_eq!(cfg.lsq_entries, 45); // width implies the Table 1 queue sizes
//! ```

use crate::config::{ConfigError, MachineConfig};

/// Builder for [`MachineConfig`], starting from the POWER4-like baseline.
///
/// Width-coupled resources (LSQ, store queue, functional units) follow
/// the Table 1 grouping when set through [`MachineConfigBuilder::width`],
/// and can still be overridden individually afterwards.
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Starts from the Table 3 baseline.
    pub fn power4_baseline() -> Self {
        MachineConfigBuilder { cfg: MachineConfig::power4_baseline() }
    }

    /// Starts from an existing configuration.
    pub fn from_config(cfg: MachineConfig) -> Self {
        MachineConfigBuilder { cfg }
    }

    /// Pipeline depth in FO4 delays per stage.
    #[must_use]
    pub fn depth_fo4(mut self, fo4: u32) -> Self {
        self.cfg.fo4_per_stage = fo4;
        self
    }

    /// Decode width, also applying the Table 1 width group: LSQ, store
    /// queue, and functional-unit counts for widths 2, 4, and 8. Other
    /// widths set only the decode bandwidth.
    #[must_use]
    pub fn width(mut self, decode: u32) -> Self {
        self.cfg.decode_width = decode;
        let coupled = match decode {
            2 => Some((15, 14, 1)),
            4 => Some((30, 28, 2)),
            8 => Some((45, 42, 4)),
            _ => None,
        };
        if let Some((lsq, sq, units)) = coupled {
            self.cfg.lsq_entries = lsq;
            self.cfg.store_queue_entries = sq;
            self.cfg.units_per_class = units;
        }
        self
    }

    /// Physical register files, applying the Table 1 joint scaling from
    /// the GPR count (FPR and SPR move proportionally along the S3 line).
    ///
    /// # Panics
    ///
    /// Panics if `gpr` is outside the 40–130 S3 range.
    #[must_use]
    pub fn registers(mut self, gpr: u32) -> Self {
        assert!((40..=130).contains(&gpr), "GPR must lie on the S3 range 40..=130");
        let i = (gpr - 40 + 5) / 10; // nearest S3 level
        self.cfg.gpr = 40 + 10 * i;
        self.cfg.fpr = 40 + 8 * i;
        self.cfg.spr = 42 + 6 * i;
        self
    }

    /// Reservation stations, applying the Table 1 joint scaling from the
    /// FX entry count (BR and FP move along the S4 line).
    ///
    /// # Panics
    ///
    /// Panics if `fx` is outside the 10–28 S4 range.
    #[must_use]
    pub fn reservations(mut self, fx: u32) -> Self {
        assert!((10..=28).contains(&fx), "FX reservations must lie on the S4 range 10..=28");
        let i = (fx - 10).div_ceil(2);
        self.cfg.resv_fx = 10 + 2 * i;
        self.cfg.resv_br = 6 + i;
        self.cfg.resv_fp = 5 + i;
        self
    }

    /// I-L1 size in KB.
    #[must_use]
    pub fn il1_kb(mut self, kb: u32) -> Self {
        self.cfg.il1_kb = kb;
        self
    }

    /// D-L1 size in KB.
    #[must_use]
    pub fn dl1_kb(mut self, kb: u32) -> Self {
        self.cfg.dl1_kb = kb;
        self
    }

    /// L2 size in KB.
    #[must_use]
    pub fn l2_kb(mut self, kb: u32) -> Self {
        self.cfg.l2_kb = kb;
        self
    }

    /// Cache associativities `(il1, dl1, l2)`.
    #[must_use]
    pub fn associativity(mut self, il1: u32, dl1: u32, l2: u32) -> Self {
        self.cfg.il1_assoc = il1;
        self.cfg.dl1_assoc = dl1;
        self.cfg.l2_assoc = l2;
        self
    }

    /// Branch predictor geometry.
    #[must_use]
    pub fn predictor(mut self, entries: u32, counter_bits: u8) -> Self {
        self.cfg.bht_entries = entries;
        self.cfg.bht_counter_bits = counter_bits;
        self
    }

    /// Enables or disables the next-line instruction prefetcher.
    #[must_use]
    pub fn il1_next_line_prefetch(mut self, on: bool) -> Self {
        self.cfg.il1_next_line_prefetch = on;
        self
    }

    /// Enables or disables the stride data prefetcher.
    #[must_use]
    pub fn dl1_stride_prefetch(mut self, on: bool) -> Self {
        self.cfg.dl1_stride_prefetch = on;
        self
    }

    /// Switches between out-of-order (default) and in-order issue.
    #[must_use]
    pub fn in_order(mut self, on: bool) -> Self {
        self.cfg.in_order = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`MachineConfig::validate`].
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_applies_coupled_resources() {
        let cfg = MachineConfigBuilder::power4_baseline().width(2).build().unwrap();
        assert_eq!((cfg.lsq_entries, cfg.store_queue_entries, cfg.units_per_class), (15, 14, 1));
        let cfg = MachineConfigBuilder::power4_baseline().width(8).build().unwrap();
        assert_eq!((cfg.lsq_entries, cfg.store_queue_entries, cfg.units_per_class), (45, 42, 4));
    }

    #[test]
    fn uncoupled_width_keeps_existing_resources() {
        let cfg = MachineConfigBuilder::power4_baseline().width(6).build().unwrap();
        assert_eq!(cfg.decode_width, 6);
        assert_eq!(cfg.lsq_entries, 30); // baseline value untouched
    }

    #[test]
    fn registers_move_all_three_files() {
        let cfg = MachineConfigBuilder::power4_baseline().registers(130).build().unwrap();
        assert_eq!((cfg.gpr, cfg.fpr, cfg.spr), (130, 112, 96));
        let cfg = MachineConfigBuilder::power4_baseline().registers(40).build().unwrap();
        assert_eq!((cfg.gpr, cfg.fpr, cfg.spr), (40, 40, 42));
        // Off-grid value snaps to the nearest level.
        let cfg = MachineConfigBuilder::power4_baseline().registers(84).build().unwrap();
        assert_eq!(cfg.gpr, 80);
    }

    #[test]
    fn reservations_move_all_three_queues() {
        let cfg = MachineConfigBuilder::power4_baseline().reservations(28).build().unwrap();
        assert_eq!((cfg.resv_fx, cfg.resv_br, cfg.resv_fp), (28, 15, 14));
    }

    #[test]
    fn invalid_build_reports_field() {
        let err = MachineConfigBuilder::power4_baseline()
            .predictor(1000, 1) // not a power of two
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "bht_entries");
    }

    #[test]
    fn extension_toggles() {
        let cfg = MachineConfigBuilder::power4_baseline()
            .il1_next_line_prefetch(true)
            .dl1_stride_prefetch(true)
            .in_order(true)
            .predictor(8192, 2)
            .associativity(2, 4, 8)
            .build()
            .unwrap();
        assert!(cfg.il1_next_line_prefetch && cfg.dl1_stride_prefetch && cfg.in_order);
        assert_eq!(cfg.bht_counter_bits, 2);
        assert_eq!(cfg.dl1_assoc, 4);
    }

    #[test]
    #[should_panic(expected = "S3 range")]
    fn out_of_range_registers_panic() {
        let _ = MachineConfigBuilder::power4_baseline().registers(200);
    }
}
