/// The machine's branch direction predictor: a table of 1-bit histories
/// (Table 3: 16 k entries) or, as a configurable extension, 2-bit
/// saturating counters, indexed by a hash of the static branch site.
///
/// One-bit counters mispredict twice per loop exit/re-entry and cannot
/// learn alternating patterns, so workloads with low-bias branches pay a
/// real penalty — which is exactly the behaviour the pipeline-depth study
/// needs (deep pipelines amplify each mispredict). Two-bit counters add
/// hysteresis: a single anomalous outcome does not flip a strongly-biased
/// entry.
///
/// # Examples
///
/// ```
/// use udse_sim::BhtPredictor;
///
/// let mut bht = BhtPredictor::new(1024);
/// let first = bht.predict_and_update(42, true);
/// let _ = first; // cold entries predict not-taken
/// assert!(bht.predict_and_update(42, true)); // learned taken
/// ```
#[derive(Debug, Clone)]
pub struct BhtPredictor {
    /// Saturating counters in `0..=max_count`; predict taken when above
    /// the midpoint.
    table: Vec<u8>,
    max_count: u8,
    mask: u64,
    lookups: u64,
    mispredicts: u64,
}

impl BhtPredictor {
    /// Creates a 1-bit predictor with `entries` slots (the Table 3
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Self {
        Self::with_counter_bits(entries, 1)
    }

    /// Creates a predictor with `bits`-wide saturating counters (1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `bits` is not 1 or 2.
    pub fn with_counter_bits(entries: u32, bits: u8) -> Self {
        assert!(entries.is_power_of_two(), "BHT entries must be a power of two");
        assert!(bits == 1 || bits == 2, "counter width must be 1 or 2 bits");
        BhtPredictor {
            table: vec![0; entries as usize],
            max_count: (1 << bits) - 1,
            mask: (entries - 1) as u64,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the direction of the branch at `site`, then updates the
    /// counter with the actual `taken` outcome. Returns `true` when the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        self.lookups += 1;
        let idx = (hash(site) & self.mask) as usize;
        let counter = self.table[idx];
        let predicted = counter > self.max_count / 2;
        if taken {
            self.table[idx] = (counter + 1).min(self.max_count);
        } else {
            self.table[idx] = counter.saturating_sub(1);
        }
        let correct = predicted == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Number of predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate (0 before any lookup).
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

fn hash(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut bht = BhtPredictor::new(64);
        // After the first observation, an always-taken branch predicts
        // perfectly.
        bht.predict_and_update(5, true);
        for _ in 0..100 {
            assert!(bht.predict_and_update(5, true));
        }
        assert_eq!(bht.mispredicts(), 1);
    }

    #[test]
    fn one_bit_thrashes_on_alternation() {
        let mut bht = BhtPredictor::new(64);
        let mut taken = true;
        let mut wrong = 0;
        for _ in 0..100 {
            if !bht.predict_and_update(9, taken) {
                wrong += 1;
            }
            taken = !taken;
        }
        // Alternating pattern defeats a 1-bit counter on every branch.
        assert!(wrong >= 99);
    }

    #[test]
    fn two_bit_counter_has_hysteresis() {
        // Pattern T T T N T T T N ... : a 1-bit predictor mispredicts
        // twice per period (the N, and the T after it); a 2-bit predictor
        // only once (the N).
        let run = |bits: u8| {
            let mut bht = BhtPredictor::with_counter_bits(64, bits);
            let mut wrong = 0;
            for i in 0..400 {
                let taken = i % 4 != 3;
                if !bht.predict_and_update(3, taken) {
                    wrong += 1;
                }
            }
            wrong
        };
        let one_bit = run(1);
        let two_bit = run(2);
        assert!(
            two_bit * 2 <= one_bit + 4,
            "2-bit ({two_bit}) should halve 1-bit ({one_bit}) mispredicts"
        );
    }

    #[test]
    fn aliasing_possible_with_small_table() {
        // With 2 entries and many sites, distinct sites must collide.
        let mut bht = BhtPredictor::new(2);
        for site in 0..64u64 {
            bht.predict_and_update(site, site % 2 == 0);
        }
        assert!(bht.lookups() == 64);
        assert!(bht.mispredicts() > 0);
    }

    #[test]
    fn rate_accounts_lookups() {
        let mut bht = BhtPredictor::new(16);
        assert_eq!(bht.mispredict_rate(), 0.0);
        bht.predict_and_update(1, true); // cold: predicted false -> miss
        assert!((bht.mispredict_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = BhtPredictor::new(1000);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn unsupported_counter_width_panics() {
        let _ = BhtPredictor::with_counter_bits(64, 3);
    }
}
