use std::error::Error;
use std::fmt;

/// Technology constants tying the abstract design space to wall-clock
/// time. One FO4 inverter delay in picoseconds (130 nm-era, matching the
/// POWER4 generation the paper models).
pub(crate) const FO4_PS: f64 = 40.0;

/// Latch plus clock-skew overhead per pipeline stage, in FO4 delays.
pub(crate) const LATCH_FO4: f64 = 3.0;

/// Total front-end logic depth (fetch through execute) in FO4 delays;
/// divided by the per-stage useful logic to obtain the pipeline's stage
/// count and hence the branch misprediction penalty.
pub(crate) const FRONT_LOGIC_FO4: f64 = 120.0;

/// Fixed-point ALU critical path in FO4 delays (result-bypass loop).
pub(crate) const FX_LOGIC_FO4: f64 = 11.0;

/// Floating-point operation latency in nanoseconds (pipelined).
pub(crate) const FP_NS: f64 = 3.0;

/// Main memory access latency in nanoseconds.
pub(crate) const MEM_NS: f64 = 55.0;

/// Cache block size in bytes (Table 3: 128 B at every level).
pub(crate) const BLOCK_BYTES: u32 = 128;

/// Full machine configuration: one point of the paper's design space plus
/// the fixed structural constants of the POWER4-like baseline (Table 3).
///
/// Use [`MachineConfig::power4_baseline`] for the paper's Table 3 machine
/// and the setters to derive variants. All fields are public data in the
/// C-struct spirit: the type's invariants are enforced by
/// [`MachineConfig::validate`], which the simulator calls on entry.
///
/// # Examples
///
/// ```
/// use udse_sim::MachineConfig;
///
/// let mut cfg = MachineConfig::power4_baseline();
/// cfg.fo4_per_stage = 12; // deeper pipeline
/// cfg.validate().unwrap();
/// let t = cfg.timing();
/// assert!(t.frequency_ghz > 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Pipeline depth expressed as FO4 delays per stage (9–36 in the
    /// paper's sample space). Fewer FO4 per stage = deeper pipeline =
    /// higher frequency.
    pub fo4_per_stage: u32,
    /// Decode bandwidth in non-branch instructions per cycle (2, 4, 8).
    pub decode_width: u32,
    /// Load/store queue entries (varies jointly with width in Table 1).
    pub lsq_entries: u32,
    /// Store queue entries (varies jointly with width).
    pub store_queue_entries: u32,
    /// Functional units of each class (FXU, FPU, LSU, BR all share this
    /// count in Table 1's width set: 1, 2, or 4 of each).
    pub units_per_class: u32,
    /// General-purpose physical registers (40–130).
    pub gpr: u32,
    /// Floating-point physical registers (40–112).
    pub fpr: u32,
    /// Special-purpose physical registers (42–96).
    pub spr: u32,
    /// Branch reservation station entries (6–15).
    pub resv_br: u32,
    /// Fixed-point reservation station entries (10–28); the load/store
    /// pipeline shares this scheduler in the modeled machine.
    pub resv_fx: u32,
    /// Floating-point reservation station entries (5–14).
    pub resv_fp: u32,
    /// Instruction L1 cache size in KB (16–256).
    pub il1_kb: u32,
    /// Data L1 cache size in KB (8–128).
    pub dl1_kb: u32,
    /// Unified L2 cache size in KB (256–4096).
    pub l2_kb: u32,
    /// I-L1 associativity (Table 3: direct-mapped).
    pub il1_assoc: u32,
    /// D-L1 associativity (Table 3: 2-way).
    pub dl1_assoc: u32,
    /// L2 associativity (Table 3: 4-way).
    pub l2_assoc: u32,
    /// Branch history table entries (Table 3: 16 k 1-bit).
    pub bht_entries: u32,
    /// BHT counter width in bits: 1 (Table 3) or 2 (extension with
    /// hysteresis).
    pub bht_counter_bits: u8,
    /// Next-line instruction prefetch: on every I-L1 access, the
    /// sequential successor block is pulled into the hierarchy
    /// (extension; off in the paper's machine).
    pub il1_next_line_prefetch: bool,
    /// Stride data prefetch: a reference predictor watches the load/store
    /// block stream and prefetches the next block when two consecutive
    /// deltas agree (extension; off in the paper's machine).
    pub dl1_stride_prefetch: bool,
    /// Reorder buffer entries (fixed structural constant).
    pub rob_entries: u32,
    /// In-order issue mode (§8 future-work extension; the paper's space is
    /// all out-of-order).
    pub in_order: bool,
}

impl MachineConfig {
    /// The POWER4-like baseline of the paper's Table 3: 19 FO4, 4-wide
    /// decode, 2 units per class, 80 GPR / 72 FPR, 64 KB I-L1, 32 KB D-L1,
    /// 2 MB L2.
    pub fn power4_baseline() -> Self {
        MachineConfig {
            fo4_per_stage: 19,
            decode_width: 4,
            lsq_entries: 30,
            store_queue_entries: 28,
            units_per_class: 2,
            gpr: 80,
            fpr: 72,
            spr: 60,
            resv_br: 12,
            resv_fx: 20,
            resv_fp: 10,
            il1_kb: 64,
            dl1_kb: 32,
            l2_kb: 2048,
            il1_assoc: 1,
            dl1_assoc: 2,
            l2_assoc: 4,
            bht_entries: 16_384,
            bht_counter_bits: 1,
            il1_next_line_prefetch: false,
            dl1_stride_prefetch: false,
            rob_entries: 256,
            in_order: false,
        }
    }

    /// Dispatch bandwidth in instructions per cycle. Table 3 pairs 4-wide
    /// decode with 9-wide dispatch; the model generalizes this as
    /// `2 * decode + 1`.
    pub fn dispatch_width(&self) -> u32 {
        2 * self.decode_width + 1
    }

    /// Commit bandwidth (same as dispatch).
    pub fn commit_width(&self) -> u32 {
        self.dispatch_width()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field when a value
    /// is zero, out of the supported range, or inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn check(cond: bool, field: &'static str, why: &'static str) -> Result<(), ConfigError> {
            if cond {
                Ok(())
            } else {
                Err(ConfigError { field, why })
            }
        }
        check((6..=48).contains(&self.fo4_per_stage), "fo4_per_stage", "must be in 6..=48")?;
        check(
            self.fo4_per_stage as f64 > LATCH_FO4,
            "fo4_per_stage",
            "must exceed latch overhead",
        )?;
        check(
            self.decode_width >= 1 && self.decode_width <= 16,
            "decode_width",
            "must be in 1..=16",
        )?;
        check(self.lsq_entries >= 1, "lsq_entries", "must be positive")?;
        check(self.store_queue_entries >= 1, "store_queue_entries", "must be positive")?;
        check(self.units_per_class >= 1, "units_per_class", "must be positive")?;
        check(
            self.gpr >= 34,
            "gpr",
            "must cover the 32 architected registers plus renaming slack",
        )?;
        check(
            self.fpr >= 34,
            "fpr",
            "must cover the 32 architected registers plus renaming slack",
        )?;
        check(self.spr >= 10, "spr", "must cover the architected special registers")?;
        check(self.resv_br >= 1, "resv_br", "must be positive")?;
        check(self.resv_fx >= 1, "resv_fx", "must be positive")?;
        check(self.resv_fp >= 1, "resv_fp", "must be positive")?;
        for (kb, field) in [(self.il1_kb, "il1_kb"), (self.dl1_kb, "dl1_kb"), (self.l2_kb, "l2_kb")]
        {
            check(kb >= 1, field, "must be positive")?;
            check((kb * 1024) % BLOCK_BYTES == 0, field, "must hold whole blocks")?;
        }
        for (assoc, field) in [
            (self.il1_assoc, "il1_assoc"),
            (self.dl1_assoc, "dl1_assoc"),
            (self.l2_assoc, "l2_assoc"),
        ] {
            check(assoc >= 1, field, "must be positive")?;
        }
        check(
            self.il1_kb * 1024 / BLOCK_BYTES >= self.il1_assoc,
            "il1_assoc",
            "exceeds block count",
        )?;
        check(
            self.dl1_kb * 1024 / BLOCK_BYTES >= self.dl1_assoc,
            "dl1_assoc",
            "exceeds block count",
        )?;
        check(self.l2_kb * 1024 / BLOCK_BYTES >= self.l2_assoc, "l2_assoc", "exceeds block count")?;
        check(self.bht_entries.is_power_of_two(), "bht_entries", "must be a power of two")?;
        check(
            self.bht_counter_bits == 1 || self.bht_counter_bits == 2,
            "bht_counter_bits",
            "must be 1 or 2",
        )?;
        check(self.rob_entries >= 8, "rob_entries", "must be at least 8")?;
        Ok(())
    }

    /// Derives the wall-clock timing parameters of this configuration.
    pub fn timing(&self) -> DerivedTiming {
        let cycle_ps = self.fo4_per_stage as f64 * FO4_PS;
        let frequency_ghz = 1000.0 / cycle_ps;
        let useful_fo4 = self.fo4_per_stage as f64 - LATCH_FO4;
        let front_stages = (FRONT_LOGIC_FO4 / useful_fo4).ceil() as u64;
        let fx_latency = (FX_LOGIC_FO4 / self.fo4_per_stage as f64).ceil().max(1.0) as u64;
        let fp_latency = ns_to_cycles(FP_NS, cycle_ps).max(2);
        // L1 hits are single-cycle at every depth and size, as in the
        // paper's Table 3 machine (banked, pipelined arrays); capacity
        // costs appear as energy and leakage, not hit latency.
        let il1_latency = 1;
        let dl1_latency = 1;
        let l2_latency = ns_to_cycles(l2_ns(self.l2_kb), cycle_ps);
        let memory_latency = ns_to_cycles(MEM_NS, cycle_ps);
        DerivedTiming {
            cycle_ps,
            frequency_ghz,
            front_stages,
            fx_latency,
            fp_latency,
            il1_latency,
            dl1_latency,
            l2_latency,
            memory_latency,
        }
    }
}

/// CACTI-flavoured L2 access time (256 KB -> ~4.5 ns, 4 MB -> ~7.7 ns,
/// matching Table 3's 9-cycle 2 MB L2 at 19 FO4).
fn l2_ns(kb: u32) -> f64 {
    4.5 + 0.8 * ((kb as f64 / 256.0).log2().max(0.0))
}

fn ns_to_cycles(ns: f64, cycle_ps: f64) -> u64 {
    ((ns * 1000.0) / cycle_ps).ceil().max(1.0) as u64
}

/// Wall-clock quantities derived from a [`MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedTiming {
    /// Cycle time in picoseconds.
    pub cycle_ps: f64,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Front-end pipeline stages (fetch to execute); the branch
    /// misprediction redirect penalty in cycles.
    pub front_stages: u64,
    /// Fixed-point operation latency in cycles.
    pub fx_latency: u64,
    /// Floating-point operation latency in cycles (pipelined).
    pub fp_latency: u64,
    /// I-L1 hit latency in cycles.
    pub il1_latency: u64,
    /// D-L1 hit latency in cycles.
    pub dl1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Main memory latency in cycles.
    pub memory_latency: u64,
}

/// Error describing an invalid [`MachineConfig`] field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    why: &'static str,
}

impl ConfigError {
    /// Name of the offending configuration field.
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine configuration: {} {}", self.field, self.why)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        MachineConfig::power4_baseline().validate().unwrap();
    }

    #[test]
    fn baseline_timing_matches_power4_era() {
        let t = MachineConfig::power4_baseline().timing();
        // 19 FO4 * 40 ps = 760 ps -> ~1.3 GHz.
        assert!((t.frequency_ghz - 1.3158).abs() < 0.01);
        // Memory: 55 ns / 0.76 ns = ~73 cycles (Table 3 says 77).
        assert!((70..=80).contains(&t.memory_latency));
        // L2: ~6.9 ns -> 9-10 cycles (Table 3 says 9).
        assert!((8..=10).contains(&t.l2_latency));
        // L1D 32 KB: 1 cycle.
        assert_eq!(t.dl1_latency, 1);
    }

    #[test]
    fn deeper_pipeline_raises_frequency_and_stages() {
        let mut deep = MachineConfig::power4_baseline();
        deep.fo4_per_stage = 12;
        let mut shallow = MachineConfig::power4_baseline();
        shallow.fo4_per_stage = 30;
        let td = deep.timing();
        let ts = shallow.timing();
        assert!(td.frequency_ghz > 2.0 * ts.frequency_ghz * 0.9);
        assert!(td.front_stages > ts.front_stages);
        assert!(td.memory_latency > ts.memory_latency);
        assert!(td.fp_latency > ts.fp_latency);
    }

    #[test]
    fn shallow_pipeline_single_cycle_alu() {
        let mut cfg = MachineConfig::power4_baseline();
        cfg.fo4_per_stage = 15;
        assert_eq!(cfg.timing().fx_latency, 1);
        cfg.fo4_per_stage = 12;
        assert_eq!(cfg.timing().fx_latency, 1);
        cfg.fo4_per_stage = 9;
        assert_eq!(cfg.timing().fx_latency, 2);
    }

    #[test]
    fn bigger_l2_is_slower_but_l1_stays_single_cycle() {
        let mut small = MachineConfig::power4_baseline();
        small.dl1_kb = 8;
        small.l2_kb = 256;
        let mut big = MachineConfig::power4_baseline();
        big.dl1_kb = 128;
        big.l2_kb = 4096;
        assert!(big.timing().l2_latency > small.timing().l2_latency);
        // L1 hit latency is pinned at one cycle at every size and depth.
        for fo4 in [9, 19, 36] {
            let mut cfg = big;
            cfg.fo4_per_stage = fo4;
            assert_eq!(cfg.timing().dl1_latency, 1);
            assert_eq!(cfg.timing().il1_latency, 1);
        }
    }

    #[test]
    fn dispatch_width_tracks_table3() {
        let cfg = MachineConfig::power4_baseline();
        assert_eq!(cfg.decode_width, 4);
        assert_eq!(cfg.dispatch_width(), 9);
        assert_eq!(cfg.commit_width(), 9);
    }

    #[test]
    fn invalid_fields_are_named() {
        let mut cfg = MachineConfig::power4_baseline();
        cfg.gpr = 10;
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field(), "gpr");
        assert!(err.to_string().contains("gpr"));

        let mut cfg = MachineConfig::power4_baseline();
        cfg.bht_entries = 1000;
        assert_eq!(cfg.validate().unwrap_err().field(), "bht_entries");

        let mut cfg = MachineConfig::power4_baseline();
        cfg.fo4_per_stage = 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn assoc_cannot_exceed_blocks() {
        let mut cfg = MachineConfig::power4_baseline();
        cfg.dl1_kb = 1;
        cfg.dl1_assoc = 16;
        assert_eq!(cfg.validate().unwrap_err().field(), "dl1_assoc");
    }
}
