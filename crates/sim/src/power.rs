use crate::config::MachineConfig;
use crate::result::ActivityCounts;

/// PowerTimer-style power model: per-access energies for each
/// microarchitectural structure combined with activity counts from the
/// timing simulation, plus clock/latch power and capacity-proportional
/// leakage.
///
/// Scaling laws follow the paper's §2.1/§5.1 description:
///
/// - **Width**: multi-ported structures (rename, register files, bypass)
///   scale superlinearly (`width^1.8`); clustered functional units scale
///   near-linearly (\[25], \[19]).
/// - **Depth**: latch count grows with pipeline stages and clock power is
///   proportional to `latches * frequency`, so power grows superlinearly
///   as FO4-per-stage shrinks.
/// - **Caches**: per-access energy grows as `sqrt(capacity)` and leakage
///   linearly with capacity (CACTI \[21]).
///
/// # Examples
///
/// ```
/// use udse_sim::{MachineConfig, PowerModel};
///
/// let model = PowerModel::new(&MachineConfig::power4_baseline());
/// // The model is evaluated against activity counts by `Simulator::run`;
/// // structural (idle) power alone is available directly:
/// let idle = model.idle_watts();
/// assert!(idle > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: MachineConfig,
}

/// Reference width for the energy constants (the 4-wide Table 3 machine).
const REF_WIDTH: f64 = 4.0;
/// Reference frequency in GHz (19 FO4 at 40 ps/FO4).
const REF_GHZ: f64 = 1.3158;
/// Reference front-end stage count (19 FO4).
const REF_STAGES: f64 = 8.0;

// Per-event energies in nanojoules at the reference configuration.
const E_FRONT: f64 = 0.18;
const E_RENAME: f64 = 0.18;
const E_REGFILE: f64 = 0.33;
const E_ISSUE: f64 = 0.15;
const E_FX: f64 = 0.15;
const E_FP: f64 = 0.75;
const E_LS: f64 = 0.21;
const E_BR: f64 = 0.08;
const E_BPRED: f64 = 0.05;
const E_IL1: f64 = 0.15;
const E_DL1: f64 = 0.15;
const E_L2: f64 = 0.90;
const E_FLUSH_PER_SLOT: f64 = 0.06;

// Structural power in watts at the reference configuration.
const P_CLOCK_REF: f64 = 30.0;
const P_LEAK_BASE: f64 = 2.0;
const LEAK_W_PER_L1_KB: f64 = 0.009;
const LEAK_W_PER_L2_KB: f64 = 0.0013;
const LEAK_W_PER_REG: f64 = 0.006;
const P_PER_FU: f64 = 0.50;

impl PowerModel {
    /// Builds a model for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        PowerModel { cfg: *cfg }
    }

    fn width_factor(&self, exponent: f64) -> f64 {
        (self.cfg.decode_width as f64 / REF_WIDTH).powf(exponent)
    }

    /// Static (activity-independent) power: leakage plus functional-unit
    /// standby power.
    pub fn idle_watts(&self) -> f64 {
        let cfg = &self.cfg;
        let cache_leak = LEAK_W_PER_L1_KB * (cfg.il1_kb + cfg.dl1_kb) as f64
            + LEAK_W_PER_L2_KB * cfg.l2_kb as f64;
        let reg_leak = LEAK_W_PER_REG * (cfg.gpr + cfg.fpr + cfg.spr) as f64;
        let fu_static = P_PER_FU * (4 * cfg.units_per_class) as f64;
        P_LEAK_BASE + cache_leak + reg_leak + fu_static
    }

    /// Evaluates total power for the given activity, returning the
    /// per-structure breakdown.
    pub fn evaluate(&self, acts: &ActivityCounts) -> PowerBreakdown {
        let cfg = &self.cfg;
        let t = cfg.timing();
        let cycles = acts.cycles.max(1) as f64;
        let seconds = cycles * t.cycle_ps * 1e-12;
        let insts = acts.instructions as f64;
        let to_watts = 1e-9 / seconds; // nJ totals -> watts

        // Width-dependent per-instruction core energies.
        let front = E_FRONT * self.width_factor(1.1) * insts;
        let rename = E_RENAME * self.width_factor(1.6) * insts;
        let regs_factor =
            ((cfg.gpr + cfg.fpr + cfg.spr) as f64 / 212.0).sqrt() * self.width_factor(1.6);
        let regfile = E_REGFILE * regs_factor * insts;
        let resv_total = (cfg.resv_fx + cfg.resv_fp + cfg.resv_br + cfg.lsq_entries) as f64;
        let issue = E_ISSUE * (resv_total / 72.0).sqrt() * self.width_factor(1.3) * insts;

        // Functional units: near-linear in width thanks to clustering.
        let fu = E_FX * acts.fx_ops as f64
            + E_FP * acts.fp_ops as f64
            + E_LS * (acts.loads + acts.stores) as f64
            + E_BR * acts.branches as f64;

        // Caches: CACTI-like sqrt(capacity) access energy.
        let cache = E_IL1 * (cfg.il1_kb as f64 / 64.0).sqrt() * acts.il1_accesses as f64
            + E_DL1 * (cfg.dl1_kb as f64 / 32.0).sqrt() * acts.dl1_accesses as f64
            + E_L2 * (cfg.l2_kb as f64 / 2048.0).sqrt() * acts.l2_accesses as f64;

        let bpred = E_BPRED * acts.bht_lookups as f64;

        // Misprediction flushes discard in-flight work proportional to
        // machine width times depth.
        let flush_slots = cfg.decode_width as f64 * t.front_stages as f64;
        let flush = E_FLUSH_PER_SLOT * flush_slots * acts.mispredicts as f64;

        // Clock / latch power: proportional to latch count (width x
        // stages) and frequency, partially gated by utilization.
        let util = (acts.instructions as f64 / cycles / cfg.decode_width as f64).clamp(0.0, 1.0);
        let gating = 0.35 + 0.65 * util;
        let clock_w = P_CLOCK_REF
            * self.width_factor(1.0)
            * (t.front_stages as f64 / REF_STAGES)
            * (t.frequency_ghz / REF_GHZ)
            * gating;

        PowerBreakdown {
            front_w: front * to_watts,
            rename_w: rename * to_watts,
            regfile_w: regfile * to_watts,
            issue_w: issue * to_watts,
            fu_w: fu * to_watts,
            cache_w: cache * to_watts,
            bpred_w: (bpred + flush) * to_watts,
            clock_w,
            leakage_w: self.idle_watts(),
        }
    }
}

/// Per-structure power decomposition in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Fetch and decode logic.
    pub front_w: f64,
    /// Register rename (multi-ported map tables).
    pub rename_w: f64,
    /// Physical register files and bypass network.
    pub regfile_w: f64,
    /// Issue queues / reservation stations.
    pub issue_w: f64,
    /// Functional units.
    pub fu_w: f64,
    /// Cache hierarchy dynamic energy.
    pub cache_w: f64,
    /// Branch predictor plus misprediction flush overhead.
    pub bpred_w: f64,
    /// Clock tree and pipeline latches.
    pub clock_w: f64,
    /// Leakage and standby power.
    pub leakage_w: f64,
}

impl PowerBreakdown {
    /// Total chip power in watts.
    pub fn total(&self) -> f64 {
        self.front_w
            + self.rename_w
            + self.regfile_w
            + self.issue_w
            + self.fu_w
            + self.cache_w
            + self.bpred_w
            + self.clock_w
            + self.leakage_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_activity() -> ActivityCounts {
        ActivityCounts {
            instructions: 100_000,
            cycles: 100_000,
            fx_ops: 40_000,
            fp_ops: 10_000,
            loads: 25_000,
            stores: 10_000,
            branches: 15_000,
            il1_accesses: 20_000,
            il1_misses: 500,
            dl1_accesses: 35_000,
            dl1_misses: 2_000,
            l2_accesses: 2_500,
            l2_misses: 500,
            bht_lookups: 15_000,
            mispredicts: 1_000,
        }
    }

    #[test]
    fn baseline_power_in_plausible_band() {
        let model = PowerModel::new(&MachineConfig::power4_baseline());
        let p = model.evaluate(&base_activity()).total();
        assert!((20.0..=90.0).contains(&p), "baseline power {p} W out of band");
    }

    #[test]
    fn wider_machine_burns_more_power() {
        let mut wide = MachineConfig::power4_baseline();
        wide.decode_width = 8;
        let mut narrow = MachineConfig::power4_baseline();
        narrow.decode_width = 2;
        let acts = base_activity();
        // Note: activity counts are held fixed here, so utilization-based
        // clock gating partially offsets the wide machine's latch count;
        // the structural scaling must still dominate.
        let pw = PowerModel::new(&wide).evaluate(&acts).total();
        let pn = PowerModel::new(&narrow).evaluate(&acts).total();
        assert!(pw > 1.2 * pn, "width scaling too weak: {pw} vs {pn}");
    }

    #[test]
    fn width_scaling_is_superlinear_for_regfile() {
        let mut wide = MachineConfig::power4_baseline();
        wide.decode_width = 8;
        let acts = base_activity();
        let base = PowerModel::new(&MachineConfig::power4_baseline()).evaluate(&acts);
        let w = PowerModel::new(&wide).evaluate(&acts);
        // 2x width -> more than 2x regfile power (1.8 exponent).
        assert!(w.regfile_w > 2.5 * base.regfile_w);
        // ...but functional unit energy is unchanged per op (clustering).
        assert!((w.fu_w - base.fu_w).abs() < 1e-9);
    }

    #[test]
    fn deeper_pipeline_burns_more_clock_power() {
        let mut deep = MachineConfig::power4_baseline();
        deep.fo4_per_stage = 12;
        let mut shallow = MachineConfig::power4_baseline();
        shallow.fo4_per_stage = 30;
        let acts = base_activity();
        let pd = PowerModel::new(&deep).evaluate(&acts);
        let ps = PowerModel::new(&shallow).evaluate(&acts);
        // Frequency x stage count compounding: much more than the ~2.5x
        // frequency ratio alone.
        assert!(pd.clock_w > 3.0 * ps.clock_w);
    }

    #[test]
    fn bigger_caches_cost_leakage_and_access_energy() {
        let mut big = MachineConfig::power4_baseline();
        big.l2_kb = 4096;
        big.dl1_kb = 128;
        let mut small = MachineConfig::power4_baseline();
        small.l2_kb = 256;
        small.dl1_kb = 8;
        let acts = base_activity();
        let pb = PowerModel::new(&big).evaluate(&acts);
        let psm = PowerModel::new(&small).evaluate(&acts);
        assert!(pb.leakage_w > psm.leakage_w);
        assert!(pb.cache_w > psm.cache_w);
    }

    #[test]
    fn stalled_machine_gates_clock_power() {
        let model = PowerModel::new(&MachineConfig::power4_baseline());
        let mut stalled = base_activity();
        stalled.cycles = 1_000_000; // same work over 10x the cycles
        let active = model.evaluate(&base_activity());
        let idle = model.evaluate(&stalled);
        assert!(idle.clock_w < active.clock_w);
        // Leakage is activity-independent.
        assert!((idle.leakage_w - active.leakage_w).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let model = PowerModel::new(&MachineConfig::power4_baseline());
        let b = model.evaluate(&base_activity());
        let sum = b.front_w
            + b.rename_w
            + b.regfile_w
            + b.issue_w
            + b.fu_w
            + b.cache_w
            + b.bpred_w
            + b.clock_w
            + b.leakage_w;
        assert!((b.total() - sum).abs() < 1e-12);
    }
}
