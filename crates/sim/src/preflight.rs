//! Design-invariant trace preflight and sub-config outcome streams.
//!
//! The cycle engine recomputes two kinds of work for every design point
//! it simulates: it walks the trace's AoS instruction records, and it
//! replays the cache hierarchy and branch predictor from cold. Neither
//! depends on the full design point. The trace's structure (op classes,
//! dependency distances, block ids, branch outcomes) is invariant across
//! *all* designs, and the microarchitectural state machines are pure
//! functions of a small sub-configuration:
//!
//! - cache hit/miss/level outcomes depend only on the trace order and the
//!   IL1/DL1/L2 geometry (plus the prefetch flags, which mutate cache
//!   state) — the engine's timing never feeds back into *which* blocks
//!   are accessed or in what order;
//! - branch predict-correct/mispredict outcomes depend only on the trace
//!   order and the BHT geometry.
//!
//! This module decomposes the oracle accordingly: [`TracePreflight`]
//! decodes a trace once into columnar SoA streams shared via `Arc`
//! across every run of that trace, and [`CacheStreams`] /
//! [`BranchStream`] resolve the per-instruction outcomes once per
//! [`CacheSubConfig`] / [`BhtSubConfig`] by replaying the *same*
//! `CacheHierarchy` / `BhtPredictor` implementations the direct engine
//! uses. `Simulator::run_streamed` then consumes the resolved outcomes
//! with table lookups instead of state-machine replays, producing a
//! `SimResult` bitwise-identical to the direct path (see the
//! equivalence suites in `tests/`).
//!
//! Outcome streams are *event-indexed*, not instruction-indexed: one
//! byte per code-block boundary, per memory op, per branch. The
//! preflight's boundary/op columns tell the engine when to advance each
//! cursor, and the sparse encoding keeps a memoized stream store (125
//! cache geometries x 9 traces in the paper's Table 1 space) a few
//! hundred kilobytes per entry instead of megabytes.

use std::sync::Arc;

use udse_trace::{OpClass, Trace};

use crate::cache::{mix, AccessOutcome, CacheHierarchy, StridePrefetcher, CODE_SPACE};
use crate::config::MachineConfig;
use crate::predictor::BhtPredictor;

/// Outcome byte for a cache access event: hit in the queried L1.
pub const OUTCOME_L1: u8 = 0;
/// Outcome byte for a cache access event: missed L1, hit the L2.
pub const OUTCOME_L2: u8 = 1;
/// Outcome byte for a cache access event: served from main memory.
pub const OUTCOME_MEMORY: u8 = 2;

fn encode(outcome: AccessOutcome) -> u8 {
    match outcome {
        AccessOutcome::L1 => OUTCOME_L1,
        AccessOutcome::L2 => OUTCOME_L2,
        AccessOutcome::Memory => OUTCOME_MEMORY,
    }
}

/// A trace decoded once into design-invariant columnar (SoA) streams.
///
/// Built once per `(benchmark, trace)` and shared via [`Arc`] across
/// every simulation and stream resolution of that trace. The hot-loop
/// columns (`ops`, `src1`, `src2`, `new_code`, `taken`) are what
/// `Simulator::run_streamed` walks; the block/site columns exist for the
/// stream resolvers.
///
/// # Examples
///
/// ```
/// use udse_sim::TracePreflight;
/// use udse_trace::{Benchmark, Trace};
///
/// let trace = Trace::generate(Benchmark::Gzip, 2_000, 1);
/// let pre = TracePreflight::of(&trace);
/// assert_eq!(pre.len(), 2_000);
/// assert!(pre.branch_events() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TracePreflight {
    ops: Vec<OpClass>,
    src1: Vec<u16>,
    src2: Vec<u16>,
    /// True where the instruction begins a different code block than its
    /// predecessor — exactly the instructions whose fetch touches the
    /// I-cache (the engine's `prev_code_block` test, precomputed).
    new_code: Vec<bool>,
    taken: Vec<bool>,
    data_block: Vec<u32>,
    code_block: Vec<u32>,
    branch_site: Vec<u32>,
    /// Interleaved cache access events in trace order, packed as
    /// `block << 1 | is_data`. Stream resolution replays the hierarchy
    /// over exactly these (the interleaving matters: the unified L2
    /// sees both streams), skipping the non-event instructions.
    cache_events: Vec<u64>,
    /// Per-event set-index hash of the L1 key (`mix(block)`), aligned
    /// with `cache_events`: the mixer is design-invariant, so replaying
    /// it once per sub-config would recompute the same values hundreds
    /// of times.
    event_l1_hash: Vec<u64>,
    /// Per-event set-index hash of the unified-L2 key: for code events
    /// `mix(block | CODE_SPACE)`, for data events equal to the L1 hash.
    event_l2_hash: Vec<u64>,
    /// Per-instruction hot-loop word: everything the streamed engine
    /// reads per instruction in one load — `op` (bits 0-2, the
    /// [`OpClass`] discriminant), `new_code` (bit 3), `taken` (bit 4),
    /// `src1_dist` (bits 16-31), `src2_dist` (bits 32-47).
    packed: Vec<u64>,
    code_events: usize,
    data_events: usize,
    branch_events: usize,
}

impl TracePreflight {
    /// Decodes `trace` into columnar streams.
    pub fn of(trace: &Trace) -> Self {
        let insts = trace.instructions();
        let n = insts.len();
        let mut pre = TracePreflight {
            ops: Vec::with_capacity(n),
            src1: Vec::with_capacity(n),
            src2: Vec::with_capacity(n),
            new_code: Vec::with_capacity(n),
            taken: Vec::with_capacity(n),
            data_block: Vec::with_capacity(n),
            code_block: Vec::with_capacity(n),
            branch_site: Vec::with_capacity(n),
            cache_events: Vec::new(),
            event_l1_hash: Vec::new(),
            event_l2_hash: Vec::new(),
            packed: Vec::with_capacity(n),
            code_events: 0,
            data_events: 0,
            branch_events: 0,
        };
        let mut prev_code_block: Option<u32> = None;
        for inst in insts {
            let new_code = prev_code_block != Some(inst.code_block);
            prev_code_block = Some(inst.code_block);
            pre.ops.push(inst.op);
            pre.src1.push(inst.src1_dist);
            pre.src2.push(inst.src2_dist);
            pre.new_code.push(new_code);
            pre.taken.push(inst.taken);
            pre.data_block.push(inst.data_block);
            pre.code_block.push(inst.code_block);
            pre.branch_site.push(inst.branch_site);
            pre.packed.push(
                inst.op as u64
                    | (new_code as u64) << 3
                    | (inst.taken as u64) << 4
                    | (inst.src1_dist as u64) << 16
                    | (inst.src2_dist as u64) << 32,
            );
            pre.code_events += new_code as usize;
            if new_code {
                let block = inst.code_block as u64;
                pre.cache_events.push(block << 1);
                pre.event_l1_hash.push(mix(block));
                pre.event_l2_hash.push(mix(block | CODE_SPACE));
            }
            match inst.op {
                OpClass::Load | OpClass::Store => {
                    pre.data_events += 1;
                    let block = inst.data_block as u64;
                    pre.cache_events.push(block << 1 | 1);
                    let h = mix(block);
                    pre.event_l1_hash.push(h);
                    pre.event_l2_hash.push(h);
                }
                OpClass::Branch => pre.branch_events += 1,
                _ => {}
            }
        }
        pre
    }

    /// Convenience: decode and wrap in an [`Arc`] for sharing.
    pub fn shared(trace: &Trace) -> Arc<Self> {
        Arc::new(Self::of(trace))
    }

    /// Instructions in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of I-cache access events (code-block boundaries).
    pub fn code_events(&self) -> usize {
        self.code_events
    }

    /// Number of D-cache access events (loads plus stores).
    pub fn data_events(&self) -> usize {
        self.data_events
    }

    /// Number of branch-predictor events (branch instructions).
    pub fn branch_events(&self) -> usize {
        self.branch_events
    }

    /// Op-class column.
    pub fn ops(&self) -> &[OpClass] {
        &self.ops
    }

    /// First-source dependency distances (0 = none).
    pub fn src1(&self) -> &[u16] {
        &self.src1
    }

    /// Second-source dependency distances (0 = none).
    pub fn src2(&self) -> &[u16] {
        &self.src2
    }

    /// Code-block boundary column.
    pub fn new_code(&self) -> &[bool] {
        &self.new_code
    }

    /// Branch outcome column (meaningful at branch instructions).
    pub fn taken(&self) -> &[bool] {
        &self.taken
    }

    /// Packed hot-loop words (see the field docs for the layout).
    pub(crate) fn packed(&self) -> &[u64] {
        &self.packed
    }
}

/// The slice of a [`MachineConfig`] that cache outcome streams depend
/// on: the three cache geometries plus the prefetch flags (prefetches
/// mutate cache state, so they are part of the key). Everything else in
/// the design point — width, depth, registers, queues — cannot change a
/// cache outcome, which is what lets thousands of design points share a
/// few dozen streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheSubConfig {
    /// I-L1 size in KB.
    pub il1_kb: u32,
    /// I-L1 associativity.
    pub il1_assoc: u32,
    /// D-L1 size in KB.
    pub dl1_kb: u32,
    /// D-L1 associativity.
    pub dl1_assoc: u32,
    /// Unified L2 size in KB.
    pub l2_kb: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// Next-line instruction prefetch enabled.
    pub il1_next_line_prefetch: bool,
    /// Stride data prefetch enabled.
    pub dl1_stride_prefetch: bool,
}

impl CacheSubConfig {
    /// Extracts the cache sub-configuration of a full machine config.
    pub fn of(cfg: &MachineConfig) -> Self {
        CacheSubConfig {
            il1_kb: cfg.il1_kb,
            il1_assoc: cfg.il1_assoc,
            dl1_kb: cfg.dl1_kb,
            dl1_assoc: cfg.dl1_assoc,
            l2_kb: cfg.l2_kb,
            l2_assoc: cfg.l2_assoc,
            il1_next_line_prefetch: cfg.il1_next_line_prefetch,
            dl1_stride_prefetch: cfg.dl1_stride_prefetch,
        }
    }
}

/// The slice of a [`MachineConfig`] that the branch outcome stream
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BhtSubConfig {
    /// Branch history table entries (power of two).
    pub entries: u32,
    /// Saturating-counter width in bits (1 or 2).
    pub counter_bits: u8,
}

impl BhtSubConfig {
    /// Extracts the BHT sub-configuration of a full machine config.
    pub fn of(cfg: &MachineConfig) -> Self {
        BhtSubConfig { entries: cfg.bht_entries, counter_bits: cfg.bht_counter_bits }
    }
}

/// Cache access outcomes for one `(trace, cache sub-config)` pair,
/// resolved once and replayed by every design point sharing the
/// sub-config.
///
/// Event-indexed: `code[k]` is the outcome of the k-th code-block
/// boundary in trace order, `data[k]` the outcome of the k-th load or
/// store. Each byte is one of [`OUTCOME_L1`] / [`OUTCOME_L2`] /
/// [`OUTCOME_MEMORY`].
#[derive(Debug, Clone)]
pub struct CacheStreams {
    code: Vec<u8>,
    data: Vec<u8>,
}

impl CacheStreams {
    /// Replays the cache hierarchy over the preflighted trace, recording
    /// every demand outcome. The replay drives the exact
    /// [`CacheHierarchy`] implementation (including prefetch ordering)
    /// the direct engine uses, so outcomes — and therefore the final
    /// `SimResult` — are bitwise-identical.
    pub fn resolve(pre: &TracePreflight, sub: &CacheSubConfig) -> Self {
        let mut caches = CacheHierarchy::with_geometry(
            (sub.il1_kb, sub.il1_assoc),
            (sub.dl1_kb, sub.dl1_assoc),
            (sub.l2_kb, sub.l2_assoc),
        );
        let mut prefetcher = StridePrefetcher::new();
        let mut code = Vec::with_capacity(pre.code_events());
        let mut data = Vec::with_capacity(pre.data_events());
        // Walk the merged event column instead of every instruction: the
        // interleaving (which the unified L2 observes) is preserved, the
        // ~35% of instructions that touch no cache are skipped.
        for (k, &e) in pre.cache_events.iter().enumerate() {
            let block = e >> 1;
            let (h1, h2) = (pre.event_l1_hash[k], pre.event_l2_hash[k]);
            if e & 1 == 0 {
                code.push(encode(caches.access_code_hashed(block, h1, h2)));
                if sub.il1_next_line_prefetch {
                    caches.prefetch_code(block + 1);
                }
            } else {
                if sub.dl1_stride_prefetch {
                    prefetcher.observe(&mut caches, block as i64);
                }
                data.push(encode(caches.access_data_hashed(block, h1)));
            }
        }
        CacheStreams { code, data }
    }

    /// Code-boundary outcome bytes, in trace order.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Load/store outcome bytes, in trace order.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Approximate resident size, for bounded-store accounting.
    pub fn bytes(&self) -> usize {
        self.code.len() + self.data.len()
    }
}

/// Branch predictor outcomes for one `(trace, BHT sub-config)` pair:
/// `correct[k]` is whether the k-th branch in trace order was predicted
/// correctly.
#[derive(Debug, Clone)]
pub struct BranchStream {
    correct: Vec<bool>,
}

impl BranchStream {
    /// Replays the branch predictor over the preflighted trace.
    ///
    /// # Panics
    ///
    /// Panics if the sub-config is degenerate (entries not a power of
    /// two, unsupported counter width) — the same contract as
    /// [`BhtPredictor::with_counter_bits`].
    pub fn resolve(pre: &TracePreflight, sub: &BhtSubConfig) -> Self {
        let mut bht = BhtPredictor::with_counter_bits(sub.entries, sub.counter_bits);
        let mut correct = Vec::with_capacity(pre.branch_events());
        for i in 0..pre.len() {
            if pre.ops[i] == OpClass::Branch {
                correct.push(bht.predict_and_update(pre.branch_site[i] as u64, pre.taken[i]));
            }
        }
        BranchStream { correct }
    }

    /// Per-branch correctness flags, in trace order.
    pub fn correct(&self) -> &[bool] {
        &self.correct
    }

    /// Approximate resident size, for bounded-store accounting.
    pub fn bytes(&self) -> usize {
        self.correct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udse_trace::Benchmark;

    fn trace() -> Trace {
        Trace::generate(Benchmark::Gcc, 5_000, 7)
    }

    #[test]
    fn preflight_columns_match_trace() {
        let t = trace();
        let pre = TracePreflight::of(&t);
        assert_eq!(pre.len(), t.len());
        let insts = t.instructions();
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(pre.ops()[i], inst.op);
            assert_eq!(pre.src1()[i], inst.src1_dist);
            assert_eq!(pre.src2()[i], inst.src2_dist);
            assert_eq!(pre.taken()[i], inst.taken);
            let expected_boundary = i == 0 || insts[i - 1].code_block != inst.code_block;
            assert_eq!(pre.new_code()[i], expected_boundary, "boundary at {i}");
        }
    }

    #[test]
    fn event_counts_partition_the_trace() {
        let t = trace();
        let pre = TracePreflight::of(&t);
        let mem = t
            .instructions()
            .iter()
            .filter(|i| matches!(i.op, OpClass::Load | OpClass::Store))
            .count();
        let br = t.instructions().iter().filter(|i| i.op == OpClass::Branch).count();
        assert_eq!(pre.data_events(), mem);
        assert_eq!(pre.branch_events(), br);
        assert!(pre.code_events() >= 1 && pre.code_events() <= pre.len());
    }

    #[test]
    fn cache_streams_replay_the_hierarchy() {
        let t = trace();
        let pre = TracePreflight::of(&t);
        let cfg = MachineConfig::power4_baseline();
        let sub = CacheSubConfig::of(&cfg);
        let streams = CacheStreams::resolve(&pre, &sub);
        assert_eq!(streams.code().len(), pre.code_events());
        assert_eq!(streams.data().len(), pre.data_events());

        // Replay by hand against a fresh hierarchy: outcomes must agree
        // event by event.
        let mut caches = CacheHierarchy::new(&cfg);
        let (mut cc, mut dc) = (0usize, 0usize);
        for (i, inst) in t.instructions().iter().enumerate() {
            if pre.new_code()[i] {
                let out = encode(caches.access_code(inst.code_block as u64));
                assert_eq!(streams.code()[cc], out, "code event {cc}");
                cc += 1;
            }
            if matches!(inst.op, OpClass::Load | OpClass::Store) {
                let out = encode(caches.access_data(inst.data_block as u64));
                assert_eq!(streams.data()[dc], out, "data event {dc}");
                dc += 1;
            }
        }
    }

    #[test]
    fn branch_stream_replays_the_predictor() {
        let t = trace();
        let pre = TracePreflight::of(&t);
        let sub = BhtSubConfig { entries: 1024, counter_bits: 2 };
        let stream = BranchStream::resolve(&pre, &sub);
        assert_eq!(stream.correct().len(), pre.branch_events());
        let mut bht = BhtPredictor::with_counter_bits(sub.entries, sub.counter_bits);
        let mut k = 0usize;
        for inst in t.instructions() {
            if inst.op == OpClass::Branch {
                let correct = bht.predict_and_update(inst.branch_site as u64, inst.taken);
                assert_eq!(stream.correct()[k], correct, "branch event {k}");
                k += 1;
            }
        }
        assert_eq!(bht.mispredicts(), stream.correct().iter().filter(|c| !**c).count() as u64);
    }

    #[test]
    fn sub_configs_key_on_the_relevant_fields_only() {
        // Two designs differing only in non-cache knobs share a cache
        // key; changing any cache knob splits it.
        let a = MachineConfig::power4_baseline();
        let mut b = a;
        b.decode_width = 8;
        b.gpr = 130;
        b.fo4_per_stage = 12;
        b.resv_fx = 28;
        assert_eq!(CacheSubConfig::of(&a), CacheSubConfig::of(&b));
        assert_eq!(BhtSubConfig::of(&a), BhtSubConfig::of(&b));
        let mut c = a;
        c.dl1_kb = 128;
        assert_ne!(CacheSubConfig::of(&a), CacheSubConfig::of(&c));
        let mut d = a;
        d.il1_next_line_prefetch = true;
        assert_ne!(CacheSubConfig::of(&a), CacheSubConfig::of(&d));
        let mut e = a;
        e.bht_counter_bits = 2;
        assert_ne!(BhtSubConfig::of(&a), BhtSubConfig::of(&e));
    }
}
