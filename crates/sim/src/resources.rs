use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A finite pool of identical resources (physical registers, reservation
/// station entries, queue slots, functional-unit issue slots) tracked by
/// release cycle.
///
/// `acquire(cycle)` returns the earliest cycle at or after `cycle` when an
/// entry is available; the caller then registers the entry's release with
/// `release_at`. This is the standard occupancy model for dependence-driven
/// timers: allocation order is program order, so a full pool delays
/// dispatch until the oldest holder releases.
///
/// # Examples
///
/// ```
/// use udse_sim::ResourcePool;
///
/// let mut pool = ResourcePool::new(2);
/// assert_eq!(pool.acquire(10), 10);
/// pool.release_at(15);
/// assert_eq!(pool.acquire(10), 10);
/// pool.release_at(20);
/// // Pool is full until cycle 15.
/// assert_eq!(pool.acquire(12), 15);
/// ```
#[derive(Debug, Clone)]
pub struct ResourcePool {
    capacity: usize,
    releases: BinaryHeap<Reverse<u64>>,
    /// High-water mark of simultaneous occupancy, for utilization stats.
    peak: usize,
    /// Total acquisitions, for activity-based power accounting.
    acquisitions: u64,
}

impl ResourcePool {
    /// Creates a pool with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource pool capacity must be positive");
        ResourcePool {
            capacity,
            releases: BinaryHeap::with_capacity(capacity + 1),
            peak: 0,
            acquisitions: 0,
        }
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquires one entry at or after `cycle`, returning the actual
    /// acquisition cycle (delayed to the earliest release when the pool is
    /// full). The caller must pair this with exactly one
    /// [`ResourcePool::release_at`].
    pub fn acquire(&mut self, cycle: u64) -> u64 {
        self.acquisitions += 1;
        // Drop bookkeeping for entries already free at `cycle`.
        while let Some(&Reverse(r)) = self.releases.peek() {
            if r <= cycle && self.releases.len() == self.capacity {
                self.releases.pop();
            } else {
                break;
            }
        }
        let at = if self.releases.len() < self.capacity {
            cycle
        } else {
            let Reverse(earliest) = self.releases.pop().expect("full pool has entries");
            earliest.max(cycle)
        };
        self.peak = self.peak.max(self.releases.len() + 1);
        at
    }

    /// Registers that the most recently acquired entry frees at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if called more times than `acquire` (occupancy underflow is a
    /// program error).
    pub fn release_at(&mut self, cycle: u64) {
        assert!(self.releases.len() < self.capacity, "release_at without matching acquire");
        self.releases.push(Reverse(cycle));
    }

    /// Total acquisitions performed.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Peak simultaneous occupancy.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_without_contention_is_immediate() {
        let mut p = ResourcePool::new(4);
        for c in [5, 6, 7, 8] {
            assert_eq!(p.acquire(c), c);
            p.release_at(c + 100);
        }
    }

    #[test]
    fn full_pool_delays_to_earliest_release() {
        let mut p = ResourcePool::new(2);
        assert_eq!(p.acquire(0), 0);
        p.release_at(10);
        assert_eq!(p.acquire(0), 0);
        p.release_at(20);
        // Both busy; earliest release is 10.
        assert_eq!(p.acquire(3), 10);
        p.release_at(30);
        // Now releases are {20, 30}; next goes at 20.
        assert_eq!(p.acquire(3), 20);
        p.release_at(40);
    }

    #[test]
    fn released_entries_are_reusable() {
        let mut p = ResourcePool::new(1);
        assert_eq!(p.acquire(0), 0);
        p.release_at(5);
        // At cycle 6 the single entry is free again.
        assert_eq!(p.acquire(6), 6);
        p.release_at(7);
        assert_eq!(p.acquire(6), 7);
        p.release_at(8);
    }

    #[test]
    fn acquisitions_and_peak_tracked() {
        let mut p = ResourcePool::new(3);
        p.acquire(0);
        p.release_at(100);
        p.acquire(0);
        p.release_at(100);
        assert_eq!(p.acquisitions(), 2);
        assert_eq!(p.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ResourcePool::new(0);
    }

    #[test]
    #[should_panic(expected = "without matching acquire")]
    fn unbalanced_release_panics() {
        let mut p = ResourcePool::new(1);
        p.release_at(1);
        p.release_at(2);
    }
}
