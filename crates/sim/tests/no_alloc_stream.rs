//! Allocation-free guarantee on the streamed cycle loop.
//!
//! The oracle decomposition only pays off if the per-design work —
//! `Simulator::run_streamed_with` against preflighted columns and
//! memoized outcome streams — never touches the heap: at 2,025+ sims
//! per study over 200k-instruction traces, a single allocation per run
//! (let alone per instruction) would show up directly in
//! `sim.instructions_per_sec`. This pins it with the counting
//! allocator, alongside the predictor's `no_alloc_sweep` pin: the
//! scratch and streams allocate at construction, then whole simulations
//! run under `assert_no_alloc`, which panics on the first heap
//! allocation on the asserting thread.

use udse_sim::{
    BhtSubConfig, BranchStream, CacheStreams, CacheSubConfig, MachineConfig, Simulator,
    StreamScratch, TracePreflight,
};
use udse_trace::{Benchmark, Trace};

// Integration tests are separate binaries: each one that measures
// allocations must install the counting allocator itself.
#[global_allocator]
static ALLOC: udse_obs::CountingAlloc = udse_obs::CountingAlloc::new();

#[test]
fn streamed_cycle_loop_is_allocation_free() {
    let trace = Trace::generate(Benchmark::Twolf, 20_000, 7);
    let cfg = MachineConfig::power4_baseline();
    let pre = TracePreflight::of(&trace);
    let cache = CacheStreams::resolve(&pre, &CacheSubConfig::of(&cfg));
    let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(&cfg));
    let sim = Simulator::new(cfg);
    let mut scratch = StreamScratch::new(sim.config());

    // Warm run: registers the sim.runs/sim.instructions counters (their
    // first lookup allocates registry entries) and sizes the scratch.
    let warm = sim.run_streamed_with(&pre, &cache, &bht, 5_000, &mut scratch);

    let pinned = udse_obs::alloc::assert_no_alloc("streamed cycle loop", || {
        sim.run_streamed_with(&pre, &cache, &bht, 5_000, &mut scratch)
    });
    assert_eq!(pinned, warm, "steady-state runs must be deterministic");

    // A second design against the same scratch: prefetch flags flip the
    // resolved streams, not the engine's allocation profile. Resolve is
    // allowed to allocate (it happens once per sub-config); the cycle
    // loop itself stays pinned.
    let mut other = MachineConfig::power4_baseline();
    other.il1_next_line_prefetch = true;
    other.dl1_stride_prefetch = true;
    other.decode_width = 2;
    let cache_o = CacheStreams::resolve(&pre, &CacheSubConfig::of(&other));
    let bht_o = BranchStream::resolve(&pre, &BhtSubConfig::of(&other));
    let sim_o = Simulator::new(other);
    let direct = sim_o.run_with_warmup(&trace, 5_000);
    let streamed = udse_obs::alloc::assert_no_alloc("streamed loop, second design", || {
        sim_o.run_streamed_with(&pre, &cache_o, &bht_o, 5_000, &mut scratch)
    });
    assert_eq!(streamed, direct);
}
