//! Property tests for the streamed engine path (satellite of the cycle
//! oracle decomposition).
//!
//! The contract is bitwise identity: for any design point, simulating a
//! trace through `run_streamed` against streams resolved for that
//! design's cache/BHT sub-configs must produce exactly the `SimResult`
//! the direct `run_with_warmup` path produces. These properties draw
//! random cache geometries, prefetch flags, BHT configurations, and
//! core knobs — far beyond the Table-1 cross-product — so the identity
//! holds by construction, not by enumeration.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_sim::{
    BhtSubConfig, BranchStream, CacheStreams, CacheSubConfig, MachineConfig, Simulator,
    TracePreflight,
};
use udse_trace::{Benchmark, Trace};

fn pick<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.gen_range(0..options.len())]
}

/// A random machine configuration mixing Table-1 values with off-grid
/// ones. Every knob that feeds the cache or branch sub-keys varies, as
/// do core knobs (width, depth, in-order) that must *not* perturb the
/// resolved streams.
fn arbitrary_config(rng: &mut StdRng) -> MachineConfig {
    let mut cfg = MachineConfig::power4_baseline();
    cfg.il1_kb = pick(rng, &[16, 32, 64, 128, 256]);
    cfg.dl1_kb = pick(rng, &[8, 16, 32, 64, 128]);
    cfg.l2_kb = pick(rng, &[256, 512, 1024, 2048, 4096]);
    cfg.il1_assoc = pick(rng, &[1, 2, 4]);
    cfg.dl1_assoc = pick(rng, &[1, 2, 4, 8]);
    cfg.l2_assoc = pick(rng, &[2, 4, 8]);
    cfg.il1_next_line_prefetch = rng.gen();
    cfg.dl1_stride_prefetch = rng.gen();
    cfg.bht_entries = pick(rng, &[1024, 4096, 16384, 65536]);
    cfg.bht_counter_bits = pick(rng, &[1, 2]);
    cfg.fo4_per_stage = pick(rng, &[9, 12, 19, 24, 30]);
    cfg.decode_width = pick(rng, &[2, 4, 8]);
    cfg.in_order = rng.gen_bool(0.25);
    cfg.rob_entries = pick(rng, &[64, 128, 256]);
    cfg.gpr = pick(rng, &[60, 80, 130]);
    cfg.fpr = pick(rng, &[56, 72, 126]);
    cfg.spr = pick(rng, &[42, 60, 118]);
    cfg.lsq_entries = pick(rng, &[15, 30, 45]);
    cfg.store_queue_entries = pick(rng, &[14, 28, 42]);
    cfg.resv_fx = pick(rng, &[10, 12, 14]);
    cfg.resv_fp = pick(rng, &[5, 10, 20]);
    cfg.resv_br = pick(rng, &[6, 8, 10]);
    cfg.units_per_class = pick(rng, &[1, 2, 4]);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core tentpole property: streamed == direct, bitwise, for random
    /// designs, traces, and warmup lengths.
    #[test]
    fn streamed_result_is_bitwise_equal_to_direct(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = arbitrary_config(&mut rng);
        let bench = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
        let len = rng.gen_range(500usize..3_000);
        let trace = Trace::generate(bench, len, rng.gen());
        let warmup = rng.gen_range(0..len);

        let pre = TracePreflight::of(&trace);
        let cache = CacheStreams::resolve(&pre, &CacheSubConfig::of(&cfg));
        let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(&cfg));
        let sim = Simulator::new(cfg);

        let direct = sim.run_with_warmup(&trace, warmup);
        let streamed = sim.run_streamed(&pre, &cache, &bht, warmup);
        prop_assert_eq!(streamed, direct);
    }

    /// Memoization-safety property: streams resolved once serve every
    /// design sharing the sub-key. Two configs that differ only in
    /// core knobs (width, depth, queue sizes) must produce identical
    /// sub-keys, and the *shared* streams must reproduce both designs'
    /// direct results.
    #[test]
    fn shared_streams_serve_all_designs_with_the_same_sub_key(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = arbitrary_config(&mut rng);
        let mut other = arbitrary_config(&mut rng);
        // Align the sub-key fields; everything else stays random.
        other.il1_kb = base.il1_kb;
        other.il1_assoc = base.il1_assoc;
        other.dl1_kb = base.dl1_kb;
        other.dl1_assoc = base.dl1_assoc;
        other.l2_kb = base.l2_kb;
        other.l2_assoc = base.l2_assoc;
        other.il1_next_line_prefetch = base.il1_next_line_prefetch;
        other.dl1_stride_prefetch = base.dl1_stride_prefetch;
        other.bht_entries = base.bht_entries;
        other.bht_counter_bits = base.bht_counter_bits;
        prop_assert_eq!(CacheSubConfig::of(&base), CacheSubConfig::of(&other));
        prop_assert_eq!(BhtSubConfig::of(&base), BhtSubConfig::of(&other));

        let bench = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
        let len = rng.gen_range(500usize..2_500);
        let trace = Trace::generate(bench, len, rng.gen());
        let warmup = len / 4;

        let pre = TracePreflight::of(&trace);
        let cache = CacheStreams::resolve(&pre, &CacheSubConfig::of(&base));
        let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(&base));
        for cfg in [base, other] {
            let sim = Simulator::new(cfg);
            let direct = sim.run_with_warmup(&trace, warmup);
            let streamed = sim.run_streamed(&pre, &cache, &bht, warmup);
            prop_assert_eq!(streamed, direct);
        }
    }
}
