#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 build/test gate.
#
# Everything here is offline-safe: all dependencies are workspace path
# crates (including the `compat/` stand-ins for rand/proptest/criterion),
# so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "ci: all checks passed"
