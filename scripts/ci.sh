#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 build/test gate.
#
# Everything here is offline-safe: all dependencies are workspace path
# crates (including the `compat/` stand-ins for rand/proptest/criterion),
# so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace (tier-1)"
# --workspace matters: a bare root build compiles only the `udse`
# facade crate, not the repro/udse-inspect binaries the smoke below
# runs.
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Shard smoke: run the same quick figure single-process and across two
# worker processes. The determinism contract says the figure output must
# be byte-identical; merging the sharded run's per-process manifests
# (the parent's plus every worker's) must then pass the same diff
# budgets as any other run. Quality gates hard — sharding may never
# change a number — while wall time and counters stay warn-only.
echo "==> shard smoke: repro --quick --shards 2 vs single process"
rm -rf target/shard-smoke
mkdir -p target/shard-smoke
./target/release/repro --quick --manifest target/shard-smoke/single.json fig1 fig2 \
    > target/shard-smoke/single.out
./target/release/repro --quick --shards 2 --shard-dir target/shard-smoke/shards \
    --trace target/shard-smoke/trace.json \
    --manifest target/shard-smoke/sharded.json fig1 fig2 > target/shard-smoke/sharded.out
diff target/shard-smoke/single.out target/shard-smoke/sharded.out
./target/release/udse-inspect merge target/shard-smoke/sharded.json \
    target/shard-smoke/shards/*.manifest.json -o target/shard-smoke/merged.json
echo "==> udse-inspect diff single-process vs merged sharded manifest"
./target/release/udse-inspect diff target/shard-smoke/single.json \
    target/shard-smoke/merged.json --warn-wall
# The fused-sweep instrumentation must survive sharding: the merged
# manifest has to carry both the throughput gauge and the per-design
# allocation ratio, or the floor gate below would silently stop
# guarding multi-process runs. Same for the oracle's memoization
# counters: each worker resolves cache/branch streams in its own
# process, so `sim.precompute.*` reaches the merged manifest only via
# the per-worker manifests — losing them there would blind the memo
# effectiveness columns in `udse-inspect report`.
for key in '"sweep.designs_per_sec"' '"sweep.allocs_per_design"' \
        '"sim.precompute.hits"' '"sim.precompute.misses"'; do
    if ! grep -qF "${key}" target/shard-smoke/merged.json; then
        echo "==> merged sharded manifest is missing ${key}" >&2
        exit 1
    fi
done

# Multi-process trace: the sharded run above also wrote a merged Chrome
# trace. It must parse back through udse-inspect, and the per-worker
# summary must show at least three pid lanes (the parent plus both
# workers) — proving worker events actually crossed the process
# boundary via the telemetry sidecars.
echo "==> udse-inspect trace --per-worker on the merged multi-process trace"
./target/release/udse-inspect trace target/shard-smoke/trace.json --per-worker \
    | tee target/shard-smoke/per-worker.txt
lanes=$(grep -c '^ *[0-9]' target/shard-smoke/per-worker.txt)
if [ "${lanes}" -lt 3 ]; then
    echo "==> merged trace has ${lanes} pid lane(s), expected >= 3" >&2
    exit 1
fi

# Unified run report over the merged manifest plus the worker telemetry
# sidecars: per-shard throughput skew, straggler warnings, dropped-event
# accounting — and, since manifest v3, per-shard resource columns. The
# counting allocator is compiled into every workspace binary and the
# workers report CPU time in their exit summaries, so for a 2-shard run
# the cpu(s)/allocs/alloc(MB) columns must render with real numbers, not
# the "-" placeholder a resource-blind sidecar would produce.
echo "==> udse-inspect report on the merged manifest + sidecars"
./target/release/udse-inspect report target/shard-smoke/merged.json \
    --shard-dir target/shard-smoke/shards | tee target/shard-smoke/report.txt
for col in 'cpu(s)' 'allocs' 'alloc(MB)'; do
    if ! grep -qF "${col}" target/shard-smoke/report.txt; then
        echo "==> report is missing the '${col}' resource column" >&2
        exit 1
    fi
done
if grep -E '^ *[0-9]+ ' target/shard-smoke/report.txt | grep -q ' - '; then
    echo "==> report shows unmeasured ('-') resources for a live worker shard" >&2
    exit 1
fi
# Memo effectiveness columns: the workers' exit summaries carry their
# sim.precompute.* counters, and the report turns them into a per-shard
# hit-rate column. Both shards run live here, so the column must be
# present (the '-' check above already proves it holds real numbers).
if ! grep -qF 'memo-hit' target/shard-smoke/report.txt; then
    echo "==> report is missing the 'memo-hit' memoization column" >&2
    exit 1
fi

# Query smoke: the `repro query` subcommand must answer a constrained
# optimum and a what-if delta from the CLI with exit 0 and byte-stable
# stdout (two runs of the same query diff clean — the canonical wire
# format has no timestamps or machine-dependent fields). The manifest
# written alongside must carry the engine's counters, and
# `udse-inspect report` must render them as the query-engine section.
echo "==> query smoke: repro query (constrained optimum + what-if delta)"
rm -rf target/query-smoke
mkdir -p target/query-smoke
opt_query='{"query_version":1,"type":"constrained_optimum","bench":null,"objective":"efficiency","constraints":[{"axis":"dl1_kb","min":null,"max":64.0},{"axis":"depth_fo4","min":18.0,"max":18.0}],"stride":500}'
./target/release/repro query --quick --manifest target/query-smoke/opt.manifest.json \
    "${opt_query}" > target/query-smoke/opt1.json
./target/release/repro query --quick "${opt_query}" > target/query-smoke/opt2.json
diff target/query-smoke/opt1.json target/query-smoke/opt2.json
whatif_query='{"query_version":1,"type":"what_if","bench":"mcf","base":{"idx":[2,1,1,0,4,3,0],"fo4":18},"alternative":{"idx":[2,2,1,1,0,1,0],"fo4":18}}'
./target/release/repro query --quick "${whatif_query}" > target/query-smoke/whatif.json
grep -qF '"type": "delta"' target/query-smoke/whatif.json
for key in '"query.executed"' '"query.cache.misses"' '"query.designs_per_sec"'; do
    if ! grep -qF "${key}" target/query-smoke/opt.manifest.json; then
        echo "==> query manifest is missing ${key}" >&2
        exit 1
    fi
done
echo "==> udse-inspect report renders the query-engine section"
./target/release/udse-inspect report target/query-smoke/opt.manifest.json \
    | grep -qF 'query engine:'

# Regression gate: re-run the fixed-seed benchmark and diff against the
# committed baseline. Model quality gates hard (the fixed seed makes it
# machine-independent); wall time is demoted to a warning with
# --warn-wall since CI machines differ. See scripts/bench.sh for the
# tolerance bands.
#
# Baseline selection: the BASELINE pointer file names the canonical
# baseline manifest (mtime ordering breaks on fresh clones, where git
# gives every file the checkout time). Newest-by-mtime is the fallback
# for trees that predate the pointer.
baseline=""
if [ -f BASELINE ]; then
    baseline=$(tr -d '[:space:]' < BASELINE)
    if [ ! -f "${baseline}" ]; then
        echo "==> BASELINE points to missing file '${baseline}'" >&2
        exit 1
    fi
else
    baseline=$(ls -t BENCH_*.json 2>/dev/null | head -n1 || true)
fi
if [ -n "${baseline}" ]; then
    echo "==> scripts/bench.sh (regression gate vs ${baseline})"
    scripts/bench.sh target/bench-current.json
    # Resource gates (hard failures, unlike the warn-only wall/gauge
    # watches): the fixed seed makes allocation counts deterministic, so
    # a rise beyond the band is a real code regression. alloc.bytes may
    # double before failing (model-layer churn is legitimate);
    # sweep.allocs_per_design guards the fused sweep's allocation-free
    # inner loop — the 0.05 floor absorbs per-chunk bookkeeping noise
    # while still catching a per-design allocation creeping in (which
    # would land at >= 1.0).
    #
    # The --min-gauge floors are absolute, not relative to the baseline:
    # quick-mode sweeps run ~13M designs/sec on the SoA walker, and a
    # collapse back to per-point spline evaluation lands near 2M. The
    # 5M floor sits far from both, so machine noise cannot trip it but
    # losing the compiled fast path always does.
    #
    # sim.instructions_per_sec watches the decomposed cycle oracle the
    # same way: the quick workload simulates ~34M insts/sec with trace
    # preflight + memoized sub-config streams, while falling back to
    # direct per-design simulation lands near 11.5M. The 15M floor
    # clears the collapse rate by ~30% yet stays below even a heavily
    # loaded healthy run, so it trips only when the decomposition is
    # actually lost.
    #
    # The query-engine watches guard the unified query layer the studies
    # now run on: query.cache.hits is a deterministic counter (table2's
    # nine per-benchmark optima share one materialized all-benchmark
    # scan, so a hit-count drop means the memoized-delegation path broke)
    # and query.designs_per_sec is the engine's fused-scan throughput —
    # both warn on a >50% fall and on going missing entirely.
    echo "==> udse-inspect diff ${baseline} target/bench-current.json --warn-wall --tol-gauge sweep.designs_per_sec:50 --tol-gauge query.designs_per_sec:50 --tol-gauge query.cache.hits:50 --min-gauge sweep.designs_per_sec:5000000 --min-gauge sim.instructions_per_sec:15000000 --tol-resource alloc.bytes:100 --tol-resource sweep.allocs_per_design:100:0.05"
    ./target/release/udse-inspect diff "${baseline}" target/bench-current.json --warn-wall \
        --tol-gauge sweep.designs_per_sec:50 \
        --tol-gauge query.designs_per_sec:50 \
        --tol-gauge query.cache.hits:50 \
        --min-gauge sweep.designs_per_sec:5000000 \
        --min-gauge sim.instructions_per_sec:15000000 \
        --tol-resource alloc.bytes:100 \
        --tol-resource sweep.allocs_per_design:100:0.05
else
    echo "==> no BENCH_*.json baseline; skipping regression gate (run scripts/bench.sh and commit the output)"
fi

echo "ci: all checks passed"
