#!/usr/bin/env bash
# Fixed-seed benchmark run: produces BENCH_<shortsha>.json, a schema-v3
# run manifest with per-benchmark model-quality quantiles, metric
# snapshots, span wall/cpu/alloc totals, and a process `resources`
# section for `udse-inspect diff` gating (including --tol-resource).
#
# The run is `repro --quick fig1 fig2 table2` with the baked-in seed
# (2007), so the quality section (error p50/p90/max, bias, RMSE, R² per
# benchmark and pooled) is bit-identical across runs on any machine —
# quality drift in a diff always means a code change, never noise. fig2
# runs the characterization sweep, which populates the sweep.designs
# counter and the sweep.designs_per_sec throughput gauge the CI gate
# watches with --tol-gauge. table2 routes the per-benchmark optima
# through the unified query engine, so the manifest also carries the
# query.* counters (executed, cache hits/misses, scan throughput) the
# gate watches the same way. Wall times (and the throughput gauges) DO
# vary by machine,
# which is why the CI gate (scripts/ci.sh) runs the diff with
# --warn-wall: quality regressions beyond the default tolerance
# (±0.02 absolute on error fractions, i.e. two percentage points) fail
# the gate hard, while wall-time drift beyond the default band
# (+25% and >0.05s absolute) and gauge drops only warn.
#
# Usage: scripts/bench.sh [out.json]
#   Default output: BENCH_<shortsha>.json at the repo root (the baseline
#   naming convention). To move the baseline, commit the new manifest AND
#   write its filename into the BASELINE pointer file — scripts/ci.sh
#   reads the pointer first and only falls back to newest-by-mtime, which
#   is unreliable on fresh clones.
set -euo pipefail
cd "$(dirname "$0")/.."

shortsha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
out="${1:-BENCH_${shortsha}.json}"

echo "==> cargo build --release -p udse-bench"
cargo build --release -p udse-bench

echo "==> repro --quick --manifest ${out} fig1 fig2 table2"
./target/release/repro --quick --manifest "${out}" fig1 fig2 table2 >/dev/null

echo "==> udse-inspect show ${out}"
./target/release/udse-inspect show "${out}"
echo "bench: wrote ${out}"
