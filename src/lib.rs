//! # udse — microarchitectural design space exploration via regression
//!
//! A reproduction of Lee & Brooks, *"Illustrative Design Space Studies with
//! Microarchitectural Regression Models"* (HPCA 2007), as a Rust workspace.
//!
//! This facade crate re-exports every sub-crate so examples and integration
//! tests can use a single dependency:
//!
//! - [`linalg`] — dense matrices, QR/Cholesky, least squares
//! - [`stats`] — quantiles, boxplots, error metrics, correlation
//! - [`trace`] — synthetic benchmark workload profiles and trace generation
//! - [`sim`] — cycle-based out-of-order superscalar simulator + power model
//! - [`regress`] — restricted cubic spline regression models
//! - [`cluster`] — K-means clustering
//! - [`core`] — Table 1 design space, baseline, and the three paper studies
//! - [`obs`] — observability: spans, metrics, `UDSE_LOG` logging, run manifests
//!
//! # Quickstart
//!
//! ```no_run
//! use udse::core::space::DesignSpace;
//! use udse::core::oracle::SimOracle;
//! use udse::core::model::PaperModels;
//! use udse::trace::Benchmark;
//!
//! // Sample the design space, simulate, and fit performance/power models.
//! let space = DesignSpace::paper();
//! let oracle = SimOracle::with_trace_len(20_000);
//! let samples = space.sample_uar(200, 42);
//! let models = PaperModels::train(&oracle, Benchmark::Gzip, &samples).unwrap();
//! let point = space.decode(12345).unwrap();
//! let perf = models.predict_bips(&point);
//! let power = models.predict_watts(&point);
//! println!("predicted {perf:.3} bips at {power:.1} W");
//! ```

pub use udse_cluster as cluster;
pub use udse_core as core;
pub use udse_linalg as linalg;
pub use udse_obs as obs;
pub use udse_regress as regress;
pub use udse_sim as sim;
pub use udse_stats as stats;
pub use udse_trace as trace;
