//! Power-model behaviour across the suite: the orderings and scaling
//! laws the paper's §2.1/§5.1 substrate description promises.

use udse::sim::{MachineConfigBuilder, Simulator};
use udse::trace::{Benchmark, Trace};

const N: usize = 40_000;
const WARMUP: usize = 10_000;

fn watts(b: Benchmark, cfg: udse::sim::MachineConfig) -> f64 {
    let trace = Trace::generate(b, N, 5);
    Simulator::new(cfg).run_with_warmup(&trace, WARMUP).watts
}

#[test]
fn power_ordering_deep_wide_over_baseline_over_narrow_shallow() {
    let aggressive = MachineConfigBuilder::power4_baseline()
        .depth_fo4(12)
        .width(8)
        .registers(130)
        .build()
        .unwrap();
    let baseline = MachineConfigBuilder::power4_baseline().build().unwrap();
    let frugal = MachineConfigBuilder::power4_baseline()
        .depth_fo4(30)
        .width(2)
        .registers(40)
        .il1_kb(16)
        .dl1_kb(8)
        .l2_kb(256)
        .build()
        .unwrap();
    for b in Benchmark::ALL {
        let (wa, wb, wf) = (watts(b, aggressive), watts(b, baseline), watts(b, frugal));
        assert!(wa > wb && wb > wf, "{b}: power ordering broken ({wa:.1} / {wb:.1} / {wf:.1})");
        // The aggressive corner must be several times the frugal corner.
        assert!(wa > 2.5 * wf, "{b}: dynamic range too small ({wa:.1} vs {wf:.1})");
    }
}

#[test]
fn width_power_scaling_is_superlinear_in_the_multiported_structures() {
    // Doubling width twice (2 -> 8) should grow rename+regfile power by
    // more than 4x (the paper's superlinear multi-ported scaling), while
    // per-op functional-unit energy stays flat (clustering).
    let trace = Trace::generate(Benchmark::Ammp, N, 5);
    let narrow = MachineConfigBuilder::power4_baseline().width(2).build().unwrap();
    let wide = MachineConfigBuilder::power4_baseline().width(8).build().unwrap();
    let rn = Simulator::new(narrow).run_with_warmup(&trace, WARMUP);
    let rw = Simulator::new(wide).run_with_warmup(&trace, WARMUP);
    let multiported_n = rn.power.rename_w + rn.power.regfile_w;
    let multiported_w = rw.power.rename_w + rw.power.regfile_w;
    // Normalize by throughput: energy per instruction.
    let epi_n = multiported_n / rn.bips;
    let epi_w = multiported_w / rw.bips;
    assert!(
        epi_w > 3.0 * epi_n,
        "multi-ported energy/inst should grow superlinearly: {epi_w:.3} vs {epi_n:.3}"
    );
    let fu_epi_n = rn.power.fu_w / rn.bips;
    let fu_epi_w = rw.power.fu_w / rw.bips;
    assert!(
        fu_epi_w < 1.3 * fu_epi_n,
        "clustered FU energy/inst should stay near-flat: {fu_epi_w:.3} vs {fu_epi_n:.3}"
    );
}

#[test]
fn clock_power_grows_superlinearly_with_depth() {
    let trace = Trace::generate(Benchmark::Gzip, N, 5);
    let shallow = MachineConfigBuilder::power4_baseline().depth_fo4(30).build().unwrap();
    let deep = MachineConfigBuilder::power4_baseline().depth_fo4(12).build().unwrap();
    let rs = Simulator::new(shallow).run_with_warmup(&trace, WARMUP);
    let rd = Simulator::new(deep).run_with_warmup(&trace, WARMUP);
    let freq_ratio = rd.frequency_ghz / rs.frequency_ghz; // 2.5x
    let clock_ratio = rd.power.clock_w / rs.power.clock_w;
    assert!(
        clock_ratio > 1.5 * freq_ratio,
        "clock power must outgrow frequency (latch count compounds): {clock_ratio:.2} vs freq {freq_ratio:.2}"
    );
}

#[test]
fn cache_capacity_costs_leakage_linearly() {
    let small = MachineConfigBuilder::power4_baseline().l2_kb(256).build().unwrap();
    let large = MachineConfigBuilder::power4_baseline().l2_kb(4096).build().unwrap();
    let trace = Trace::generate(Benchmark::Applu, N, 5);
    let rs = Simulator::new(small).run_with_warmup(&trace, WARMUP);
    let rl = Simulator::new(large).run_with_warmup(&trace, WARMUP);
    let delta = rl.power.leakage_w - rs.power.leakage_w;
    // 3840 KB of extra L2 at the configured per-KB leakage.
    assert!(delta > 2.0 && delta < 10.0, "L2 leakage delta {delta:.2} W out of band");
}

#[test]
fn power_breakdown_sums_to_total_in_real_runs() {
    for b in [Benchmark::Mcf, Benchmark::Mesa] {
        let trace = Trace::generate(b, 10_000, 1);
        let r =
            Simulator::new(MachineConfigBuilder::power4_baseline().build().unwrap()).run(&trace);
        let p = r.power;
        let sum = p.front_w
            + p.rename_w
            + p.regfile_w
            + p.issue_w
            + p.fu_w
            + p.cache_w
            + p.bpred_w
            + p.clock_w
            + p.leakage_w;
        assert!((r.watts - sum).abs() < 1e-9);
        assert!(p.clock_w > 0.0 && p.leakage_w > 0.0);
    }
}
