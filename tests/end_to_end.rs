//! End-to-end integration: sample -> simulate -> fit -> predict -> study,
//! across all crates through the facade.

use udse::core::model::PaperModels;
use udse::core::oracle::{Oracle, SimOracle};
use udse::core::space::DesignSpace;
use udse::core::studies::depth::DepthStudy;
use udse::core::studies::heterogeneity::{compromise_clusters, BenchmarkArchitectures};
use udse::core::studies::pareto::{characterize, FrontierStudy};
use udse::core::studies::validation::ValidationStudy;
use udse::core::studies::{StudyConfig, TrainedSuite};
use udse::core::Engine;
use udse::stats::median_abs_rel_error;
use udse::trace::Benchmark;

fn fast_config() -> StudyConfig {
    StudyConfig {
        train_samples: 150,
        validation_samples: 20,
        eval_stride: 1000,
        delay_bins: 30,
        seed: 99,
    }
}

fn fast_oracle() -> SimOracle {
    SimOracle::with_trace_len(10_000)
}

#[test]
fn train_predict_validate_single_benchmark() {
    let oracle = fast_oracle();
    let space = DesignSpace::paper();
    let samples = space.sample_uar(150, 3);
    let models = PaperModels::train(&oracle, Benchmark::Gzip, &samples).unwrap();

    // Validation against fresh designs: errors must be bounded. Short
    // traces are noisy, so the bar is loose; the paper-scale run (see
    // EXPERIMENTS.md) achieves single-digit medians.
    let validation = space.sample_uar(30, 1234);
    let (mut obs, mut pred) = (Vec::new(), Vec::new());
    for p in &validation {
        obs.push(oracle.evaluate(Benchmark::Gzip, &p.clone()).bips);
        pred.push(models.predict_bips(p));
    }
    let err = median_abs_rel_error(&obs, &pred);
    assert!(err < 0.25, "median validation error {err} unexpectedly large");
}

#[test]
fn full_suite_studies_run_consistently() {
    let oracle = fast_oracle();
    let config = fast_config();
    let suite = TrainedSuite::train(&oracle, &config).unwrap();
    let engine = Engine::new(suite.clone(), &config);

    // Validation study covers all nine benchmarks.
    let validation = ValidationStudy::run(&oracle, &engine, &config);
    assert_eq!(validation.per_benchmark.len(), 9);
    assert!(validation.overall_performance_median < 0.5);
    assert!(validation.overall_power_median < 0.3);

    // Pareto frontier for a memory-bound benchmark is non-trivial.
    let ch = characterize(&engine, Benchmark::Mcf);
    assert_eq!(ch.benchmark, Benchmark::Mcf);
    let fs = FrontierStudy::run(&oracle, &engine, Benchmark::Mcf, &config);
    assert!(fs.designs.len() >= 3, "frontier should have several designs");
    // Frontier endpoints: the fastest design costs more power than the
    // most frugal one.
    let first = fs.predicted.first().unwrap();
    let last = fs.predicted.last().unwrap();
    assert!(first.delay_seconds() < last.delay_seconds());
    assert!(first.watts > last.watts);

    // Depth study produces one boxplot per depth and sane fractions.
    let depth = DepthStudy::run(&engine);
    assert_eq!(depth.enhanced_boxplots.len(), 7);
    for bp in &depth.enhanced_boxplots {
        assert!(bp.q1 <= bp.median && bp.median <= bp.q3);
    }

    // Heterogeneity: clusters partition the suite for every K.
    let optima = BenchmarkArchitectures::find(&engine);
    for k in 1..=9 {
        let clusters = compromise_clusters(&suite, &optima, k, 5);
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 9, "K={k} must assign every benchmark");
    }
}

#[test]
fn mcf_and_gzip_optima_differ_in_the_expected_direction() {
    // The paper's central qualitative claim: optima are diverse, with the
    // memory-bound benchmark preferring bigger L2 than the compute-bound
    // one. Traces must be study-scale: mcf's working-set band reaches 32k
    // cache blocks, which shorter traces cannot express, capping the
    // simulator's own L2 appetite.
    let oracle = SimOracle::with_trace_len(200_000);
    let config = StudyConfig {
        train_samples: 400,
        validation_samples: 10,
        eval_stride: 200,
        delay_bins: 30,
        seed: 7,
    };
    let space = DesignSpace::paper();
    let samples = space.sample_uar(config.train_samples, config.seed);
    let mcf = PaperModels::train(&oracle, Benchmark::Mcf, &samples).unwrap();
    let gzip = PaperModels::train(&oracle, Benchmark::Gzip, &samples).unwrap();
    let exploration = DesignSpace::exploration();
    let best = |m: &PaperModels| {
        udse::core::studies::strided_points(&exploration, config.eval_stride)
            .max_by(|a, b| m.predict_efficiency(a).total_cmp(&m.predict_efficiency(b)))
            .expect("non-empty space")
    };
    let mcf_opt = best(&mcf);
    let gzip_opt = best(&gzip);
    assert!(
        mcf_opt.l2_kb() > gzip_opt.l2_kb(),
        "mcf should want more L2 ({} KB) than gzip ({} KB)",
        mcf_opt.l2_kb(),
        gzip_opt.l2_kb()
    );
}
