//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;
use udse::cluster::{KMeans, MinMaxScaler};
use udse::core::pareto::ParetoFrontier;
use udse::core::space::DesignSpace;
use udse::linalg::{lstsq, Matrix, Qr};
use udse::regress::{spline_basis, ResponseTransform};
use udse::stats::{quantile, Boxplot};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn design_space_index_bijection(idx in 0u64..375_000) {
        let space = DesignSpace::paper();
        let p = space.decode(idx).unwrap();
        prop_assert_eq!(space.encode(&p), Some(idx));
        // Every decoded point materializes a valid machine.
        prop_assert!(p.to_machine_config().validate().is_ok());
    }

    #[test]
    fn exploration_points_live_in_sampling_space(idx in 0u64..262_500) {
        let exp = DesignSpace::exploration();
        let paper = DesignSpace::paper();
        let p = exp.decode(idx).unwrap();
        prop_assert!(paper.encode(&p).is_some());
    }

    #[test]
    fn pareto_frontier_is_non_dominated(
        pts in prop::collection::vec((0.1f64..10.0, 1.0f64..200.0), 1..200),
        bins in 1usize..64,
    ) {
        let f = ParetoFrontier::from_points(&pts, bins);
        prop_assert!(!f.is_empty());
        prop_assert!(f.is_non_dominated(&pts));
        // Skyline ordering.
        for w in f.points().windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn boxplot_invariants(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let bp = Boxplot::from_samples(&xs);
        prop_assert!(bp.min <= bp.lower_whisker);
        prop_assert!(bp.lower_whisker <= bp.q1 + 1e-9);
        prop_assert!(bp.q1 <= bp.median);
        prop_assert!(bp.median <= bp.q3);
        prop_assert!(bp.q3 <= bp.upper_whisker + 1e-9);
        prop_assert!(bp.upper_whisker <= bp.max);
        prop_assert_eq!(bp.n, xs.len());
    }

    #[test]
    fn quantiles_are_monotone(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn qr_reconstructs_random_matrices(
        rows in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 4),
            4..12,
        ),
    ) {
        let a = Matrix::from_rows(&rows);
        let qr = Qr::new(&a).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        let err = recon.sub(&a).unwrap().max_abs();
        prop_assert!(err < 1e-8, "reconstruction error {err}");
    }

    #[test]
    fn least_squares_residual_orthogonal(
        xs in prop::collection::vec(-10.0f64..10.0, 8..40),
        noise in prop::collection::vec(-0.5f64..0.5, 8..40),
    ) {
        let n = xs.len().min(noise.len());
        let rows: Vec<Vec<f64>> = xs[..n].iter().map(|&x| vec![1.0, x]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = xs[..n].iter().zip(&noise[..n]).map(|(x, e)| 2.0 + x + e).collect();
        // Skip degenerate designs (all x equal -> rank deficient).
        let distinct = xs[..n].iter().any(|&v| (v - xs[0]).abs() > 1e-6);
        prop_assume!(distinct);
        let beta = lstsq(&x, &y).unwrap();
        let yhat = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
        let xtr = x.tr_matvec(&resid).unwrap();
        for v in xtr {
            prop_assert!(v.abs() < 1e-6, "non-orthogonal residual: {v}");
        }
    }

    #[test]
    fn spline_linear_outside_knots(x in 10.0f64..100.0, shift in 0.1f64..5.0) {
        // Beyond the last knot the basis must be affine: equal second
        // differences.
        let knots = [1.0, 2.0, 4.0, 8.0];
        let b0 = spline_basis(x, &knots);
        let b1 = spline_basis(x + shift, &knots);
        let b2 = spline_basis(x + 2.0 * shift, &knots);
        for c in 0..b0.len() {
            let d1 = b1[c] - b0[c];
            let d2 = b2[c] - b1[c];
            prop_assert!((d1 - d2).abs() < 1e-6 * (1.0 + d1.abs()), "col {c} not affine");
        }
    }

    #[test]
    fn transforms_roundtrip(y in 0.001f64..1e6) {
        for t in [ResponseTransform::Identity, ResponseTransform::Sqrt, ResponseTransform::Log] {
            let z = t.apply(y).unwrap();
            let back = t.invert(z);
            prop_assert!((back - y).abs() < 1e-9 * y.max(1.0));
        }
    }

    #[test]
    fn kmeans_inertia_never_increases_with_k(
        pts in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 2),
            6..30,
        ),
    ) {
        let scaler = MinMaxScaler::fit(&pts);
        let norm = scaler.transform_all(&pts);
        let i1 = KMeans::new(1).with_restarts(4).run(&norm, 1).inertia();
        let i3 = KMeans::new(3).with_restarts(8).run(&norm, 1).inertia();
        prop_assert!(i3 <= i1 + 1e-9);
    }

    #[test]
    fn scaler_roundtrip(
        pts in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3),
            2..20,
        ),
    ) {
        let scaler = MinMaxScaler::fit(&pts);
        for p in &pts {
            let back = scaler.inverse(&scaler.transform(p));
            for (a, b) in back.iter().zip(p) {
                prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
            }
        }
    }
}

proptest! {
    // Simulation is comparatively expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_design_point_simulates_to_finite_metrics(idx in 0u64..375_000) {
        use udse::core::oracle::{Oracle, SimOracle};
        use udse::trace::Benchmark;
        let space = DesignSpace::paper();
        let p = space.decode(idx).unwrap();
        let oracle = SimOracle::with_trace_len(2_000);
        let m = oracle.evaluate(Benchmark::Twolf, &p);
        prop_assert!(m.bips.is_finite() && m.bips > 0.0);
        prop_assert!(m.watts.is_finite() && m.watts > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn t_cdf_is_monotone_and_quantile_inverts(
        a in -20.0f64..20.0,
        b in -20.0f64..20.0,
        dof in 1.0f64..200.0,
    ) {
        use udse::stats::{student_t_cdf, student_t_quantile};
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(student_t_cdf(lo, dof) <= student_t_cdf(hi, dof) + 1e-12);
        // Roundtrip only where the CDF has not saturated to float
        // precision (far tails lose the information to invert).
        let p = student_t_cdf(a, dof);
        prop_assume!(p > 1e-8 && p < 1.0 - 1e-8);
        let q = student_t_quantile(p, dof);
        prop_assert!((q - a).abs() < 1e-4 * (1.0 + a.abs()), "{q} vs {a}");
    }

    #[test]
    fn incomplete_beta_is_monotone_in_x(
        a in 0.2f64..10.0,
        b in 0.2f64..10.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        use udse::stats::regularized_incomplete_beta;
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let vlo = regularized_incomplete_beta(a, b, lo);
        let vhi = regularized_incomplete_beta(a, b, hi);
        prop_assert!(vlo <= vhi + 1e-10);
        prop_assert!((0.0..=1.0).contains(&vlo));
    }

    #[test]
    fn hill_climb_never_beats_exhaustive_on_its_own_surface(
        seed in 0u64..1_000,
        peak_shift in -5.0f64..5.0,
    ) {
        use udse::core::search::random_restart_hill_climb;
        let space = DesignSpace::exploration();
        let objective = move |p: &udse::core::space::DesignPoint| {
            let v = p.predictors();
            -((v[0] - 20.0 - peak_shift) / 9.0).powi(2) - ((v[6] - 10.0) / 2.0).powi(2)
        };
        let r = random_restart_hill_climb(&space, 3, seed, objective);
        let exhaustive = space.iter().map(|p| objective(&p)).fold(f64::MIN, f64::max);
        prop_assert!(r.best_value <= exhaustive + 1e-12);
        // The surface is separable and unimodal on the grid, so any
        // climb reaches the global optimum.
        prop_assert!((r.best_value - exhaustive).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_contains_sample_mean(
        xs in prop::collection::vec(-100.0f64..100.0, 2..60),
        level in 0.5f64..0.99,
    ) {
        use udse::stats::mean_confidence_interval;
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = mean_confidence_interval(&xs, level);
        prop_assert!(lo <= mean + 1e-9 && mean <= hi + 1e-9);
    }
}
