//! Heuristic-search integration: the searchers against real trained
//! models (not just synthetic unimodal objectives).

use udse::core::model::PaperModels;
use udse::core::oracle::SimOracle;
use udse::core::search::{
    genetic_search, random_restart_hill_climb, simulated_annealing, GeneticConfig,
};
use udse::core::space::DesignSpace;
use udse::core::studies::strided_points;
use udse::trace::Benchmark;

fn trained_models(b: Benchmark) -> PaperModels {
    let oracle = SimOracle::with_trace_len(8_000);
    let samples = DesignSpace::paper().sample_uar(200, 31);
    PaperModels::train(&oracle, b, &samples).unwrap()
}

#[test]
fn all_searchers_approach_the_strided_reference() {
    let models = trained_models(Benchmark::Twolf);
    let space = DesignSpace::exploration();
    let objective = |p: &udse::core::space::DesignPoint| models.predict_efficiency(p);
    // Reference: a dense strided scan (1/20th of the space, all dims
    // covered by the coprime walk).
    let reference =
        strided_points(&space, 20).map(|p| objective(&p)).fold(f64::NEG_INFINITY, f64::max);

    let hc = random_restart_hill_climb(&space, 16, 5, objective);
    let sa = simulated_annealing(&space, 25_000, reference.abs() * 0.2, 5, objective);
    let ga = genetic_search(&space, &GeneticConfig::default(), 5, objective);

    for (name, r) in [("hillclimb", hc), ("anneal", sa), ("genetic", ga)] {
        assert!(
            r.best_value >= reference * 0.97,
            "{name} reached {:.5} vs reference {reference:.5}",
            r.best_value
        );
        assert!(r.evaluations < 40_000, "{name} overspent: {} evaluations", r.evaluations);
    }
}

#[test]
fn hill_climb_on_real_surface_beats_its_starts() {
    let models = trained_models(Benchmark::Jbb);
    let space = DesignSpace::exploration();
    let objective = |p: &udse::core::space::DesignPoint| models.predict_efficiency(p);
    for seed in [1u64, 2, 3] {
        let start = space.sample_uar(1, seed)[0];
        let start_value = objective(&start);
        let r = udse::core::search::hill_climb(&space, start, objective);
        assert!(r.best_value >= start_value, "climbing must not lose ground");
    }
}

#[test]
fn searchers_find_known_structure() {
    // On mcf's surface the found optimum should carry mcf's signature:
    // narrow-to-mid width and a large L2. The traces must be long enough
    // for mcf's multi-megabyte working set to register (short traces
    // flatten the L2 response; see end_to_end.rs).
    let oracle = SimOracle::with_trace_len(150_000);
    let samples = DesignSpace::paper().sample_uar(250, 31);
    let models = PaperModels::train(&oracle, Benchmark::Mcf, &samples).unwrap();
    let space = DesignSpace::exploration();
    let r = random_restart_hill_climb(&space, 24, 7, |p| models.predict_efficiency(p));
    assert!(r.best.l2_kb() >= 1024, "mcf optimum should want L2 >= 1 MB, got {}", r.best.l2_kb());
    assert!(r.best.decode_width() <= 4, "mcf optimum should be narrow-to-mid width");
}
