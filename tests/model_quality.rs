//! Statistical-quality integration tests: the regression machinery's
//! behaviour on the real simulator, beyond raw prediction error.

use udse::core::model::{design_dataset, paper_terms, performance_spec, power_spec};
use udse::core::oracle::{Metrics, Oracle, SimOracle};
use udse::core::space::DesignSpace;
use udse::regress::{k_fold_cv, rank_predictors, residual_report, ModelSpec, ResponseTransform};
use udse::trace::Benchmark;

fn observations(
    oracle: &SimOracle,
    b: Benchmark,
    n: usize,
    seed: u64,
) -> (udse::regress::Dataset, Vec<f64>, Vec<f64>) {
    let samples = DesignSpace::paper().sample_uar(n, seed);
    let metrics: Vec<Metrics> = samples.iter().map(|p| oracle.evaluate(b, p)).collect();
    let data = design_dataset(&samples).unwrap();
    let bips = metrics.iter().map(|m| m.bips).collect();
    let watts = metrics.iter().map(|m| m.watts).collect();
    (data, bips, watts)
}

#[test]
fn depth_is_a_strong_predictor_of_power() {
    // The paper gives depth 4 knots because of its strong association with
    // the responses; verify the screening machinery agrees on simulated
    // data: depth must rank in the top predictors for power.
    let oracle = SimOracle::with_trace_len(8_000);
    let (data, _bips, watts) = observations(&oracle, Benchmark::Gzip, 150, 11);
    let ranking = rank_predictors(&data, &watts).unwrap();
    let depth_rank = ranking.iter().position(|a| a.name == "depth_fo4").unwrap();
    assert!(depth_rank <= 1, "depth ranked {depth_rank} for power: {ranking:?}");
    // And its association is negative (shallower pipeline = less power).
    assert!(ranking[depth_rank].rho < -0.5);
}

#[test]
fn width_is_a_strong_predictor_of_power() {
    let oracle = SimOracle::with_trace_len(8_000);
    let (data, _bips, watts) = observations(&oracle, Benchmark::Mesa, 150, 13);
    let ranking = rank_predictors(&data, &watts).unwrap();
    let width_rank = ranking.iter().position(|a| a.name == "width").unwrap();
    assert!(width_rank <= 1, "width ranked {width_rank}: {ranking:?}");
    assert!(ranking[width_rank].rho > 0.5, "wider must mean more power");
}

#[test]
fn cross_validation_matches_holdout_accuracy() {
    // 5-fold CV error on the training set should roughly agree with the
    // error measured on fresh designs — no gross overfitting.
    let oracle = SimOracle::with_trace_len(8_000);
    let (data, bips, _) = observations(&oracle, Benchmark::Twolf, 200, 17);
    let cv = k_fold_cv(&performance_spec(), &data, &bips, 5, 3).unwrap();
    assert!(cv.median_ape < 0.15, "CV median APE {}", cv.median_ape);

    let model = performance_spec().fit(&data, &bips).unwrap();
    let fresh = DesignSpace::paper().sample_uar(40, 999);
    let mut apes = Vec::new();
    for p in &fresh {
        let obs = oracle.evaluate(Benchmark::Twolf, p).bips;
        let pred = model.predict_row(&p.predictors()).unwrap();
        apes.push(((obs - pred) / pred).abs());
    }
    let holdout = udse::stats::median(&apes);
    assert!((cv.median_ape - holdout).abs() < 0.1, "CV {} vs holdout {holdout}", cv.median_ape);
}

#[test]
fn log_transform_improves_power_residuals_on_simulated_data() {
    let oracle = SimOracle::with_trace_len(8_000);
    let (data, _, watts) = observations(&oracle, Benchmark::Ammp, 200, 23);
    let with_log = power_spec().fit(&data, &watts).unwrap();
    let without = ModelSpec::new(ResponseTransform::Identity)
        .with_terms(paper_terms())
        .fit(&data, &watts)
        .unwrap();
    let r_log = residual_report(&with_log, &data, &watts).unwrap();
    let r_id = residual_report(&without, &data, &watts).unwrap();
    // The log response must reduce both skewness and the
    // variance-vs-level trend, as the paper's §3.3 argues.
    assert!(
        r_log.skewness.abs() < r_id.skewness.abs(),
        "log skew {} vs identity skew {}",
        r_log.skewness,
        r_id.skewness
    );
    assert!(
        r_log.spread_trend < r_id.spread_trend,
        "log spread {} vs identity spread {}",
        r_log.spread_trend,
        r_id.spread_trend
    );
}

#[test]
fn significant_terms_include_depth_spline_for_power() {
    let oracle = SimOracle::with_trace_len(8_000);
    let (data, _, watts) = observations(&oracle, Benchmark::Gcc, 250, 29);
    let model = power_spec().fit(&data, &watts).unwrap();
    let table = model.coefficient_table();
    // The linear depth column must be overwhelmingly significant.
    let depth = table.iter().find(|c| c.name == "depth_fo4").unwrap();
    assert!(depth.significant_at(0.001), "depth p-value {}", depth.p_value);
    // And the intercept too (log-watts baseline level).
    assert!(table[0].significant_at(0.001));
}
