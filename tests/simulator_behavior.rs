//! Cross-crate behavioral invariants of the simulator: the directional
//! responses the design space studies rely on.

use udse::sim::{MachineConfig, Simulator};
use udse::trace::{Benchmark, Trace};

const N: usize = 60_000;
const WARMUP: usize = 15_000;

fn run(b: Benchmark, cfg: MachineConfig) -> udse::sim::SimResult {
    let trace = Trace::generate(b, N, 5);
    Simulator::new(cfg).run_with_warmup(&trace, WARMUP)
}

#[test]
fn deeper_pipeline_raises_frequency_but_lowers_ipc() {
    let mut deep = MachineConfig::power4_baseline();
    deep.fo4_per_stage = 12;
    let mut shallow = MachineConfig::power4_baseline();
    shallow.fo4_per_stage = 30;
    for b in [Benchmark::Gzip, Benchmark::Ammp, Benchmark::Gcc] {
        let rd = run(b, deep);
        let rs = run(b, shallow);
        assert!(rd.frequency_ghz > 2.0 * rs.frequency_ghz, "{b}: frequency scaling");
        assert!(rd.ipc < rs.ipc, "{b}: deep pipeline should lower IPC");
        assert!(rd.watts > rs.watts, "{b}: deep pipeline should burn more power");
    }
}

#[test]
fn bigger_l2_never_hurts_memory_bound_performance() {
    let mut small = MachineConfig::power4_baseline();
    small.l2_kb = 256;
    let mut big = MachineConfig::power4_baseline();
    big.l2_kb = 4096;
    let rs = run(Benchmark::Mcf, small);
    let rb = run(Benchmark::Mcf, big);
    assert!(
        rb.bips > rs.bips * 1.15,
        "mcf should gain >15% from 16x L2: {} vs {}",
        rb.bips,
        rs.bips
    );
    assert!(rb.l2_miss_rate < rs.l2_miss_rate);
}

#[test]
fn compute_bound_benchmark_ignores_l2_capacity() {
    let mut small = MachineConfig::power4_baseline();
    small.l2_kb = 256;
    let mut big = MachineConfig::power4_baseline();
    big.l2_kb = 4096;
    let rs = run(Benchmark::Gzip, small);
    let rb = run(Benchmark::Gzip, big);
    let gain = rb.bips / rs.bips;
    assert!(gain < 1.05, "gzip should be L2-insensitive, saw {gain}x");
    // ...but pays the leakage for the bigger array.
    assert!(rb.watts > rs.watts);
}

#[test]
fn wider_machine_helps_ilp_rich_more_than_serial_code() {
    let wide = {
        let mut c = MachineConfig::power4_baseline();
        c.decode_width = 8;
        c.lsq_entries = 45;
        c.store_queue_entries = 42;
        c.units_per_class = 4;
        c
    };
    let narrow = {
        let mut c = MachineConfig::power4_baseline();
        c.decode_width = 2;
        c.lsq_entries = 15;
        c.store_queue_entries = 14;
        c.units_per_class = 1;
        c
    };
    let gain = |b: Benchmark| run(b, wide).bips / run(b, narrow).bips;
    let ammp = gain(Benchmark::Ammp);
    let mcf = gain(Benchmark::Mcf);
    assert!(ammp > 1.2, "ILP-rich ammp should gain from width: {ammp}");
    assert!(ammp > mcf + 0.1, "ammp ({ammp}) should gain more than serial mcf ({mcf})");
}

#[test]
fn more_registers_help_wide_machines() {
    let mut few = MachineConfig::power4_baseline();
    few.decode_width = 8;
    few.lsq_entries = 45;
    few.store_queue_entries = 42;
    few.units_per_class = 4;
    few.gpr = 40;
    few.fpr = 40;
    few.spr = 42;
    let mut many = few;
    many.gpr = 130;
    many.fpr = 112;
    many.spr = 96;
    let rf = run(Benchmark::Ammp, few);
    let rm = run(Benchmark::Ammp, many);
    assert!(rm.bips > rf.bips * 1.1, "registers should unlock ILP: {} vs {}", rm.bips, rf.bips);
}

#[test]
fn bigger_icache_helps_code_heavy_benchmark() {
    let mut small = MachineConfig::power4_baseline();
    small.il1_kb = 16;
    let mut big = MachineConfig::power4_baseline();
    big.il1_kb = 256;
    let rs = run(Benchmark::Mesa, small);
    let rb = run(Benchmark::Mesa, big);
    assert!(rb.il1_miss_rate < rs.il1_miss_rate * 0.7);
    assert!(rb.bips > rs.bips);
}

#[test]
fn in_order_mode_never_beats_out_of_order() {
    for b in [Benchmark::Ammp, Benchmark::Gzip, Benchmark::Mcf] {
        let ooo = MachineConfig::power4_baseline();
        let mut ino = ooo;
        ino.in_order = true;
        let r_ooo = run(b, ooo);
        let r_ino = run(b, ino);
        assert!(
            r_ino.bips <= r_ooo.bips * 1.001,
            "{b}: in-order ({}) must not beat out-of-order ({})",
            r_ino.bips,
            r_ooo.bips
        );
    }
}

#[test]
fn higher_associativity_does_not_raise_miss_rate_on_average() {
    let mut direct = MachineConfig::power4_baseline();
    direct.dl1_assoc = 1;
    let mut assoc = MachineConfig::power4_baseline();
    assoc.dl1_assoc = 8;
    // Average across benchmarks: associativity should reduce conflicts.
    let mut sum_direct = 0.0;
    let mut sum_assoc = 0.0;
    for b in [Benchmark::Twolf, Benchmark::Gcc, Benchmark::Jbb] {
        sum_direct += run(b, direct).dl1_miss_rate;
        sum_assoc += run(b, assoc).dl1_miss_rate;
    }
    assert!(sum_assoc <= sum_direct * 1.02, "assoc {sum_assoc} vs direct {sum_direct}");
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let cfg = MachineConfig::power4_baseline();
    let a = run(Benchmark::Equake, cfg);
    let b = run(Benchmark::Equake, cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.bips, b.bips);
    assert_eq!(a.watts, b.watts);
}

#[test]
fn benchmarks_have_distinct_characters_at_baseline() {
    let cfg = MachineConfig::power4_baseline();
    let mcf = run(Benchmark::Mcf, cfg);
    let gzip = run(Benchmark::Gzip, cfg);
    let applu = run(Benchmark::Applu, cfg);
    // mcf is the slowest, applu among the fastest.
    assert!(mcf.bips < 0.5 * gzip.bips);
    assert!(applu.bips > gzip.bips);
    // mcf thrashes the D-L1; gzip does not.
    assert!(mcf.dl1_miss_rate > 5.0 * gzip.dl1_miss_rate);
}
