//! Offline stand-in for the subset of the `criterion` benchmarking API
//! that the udse workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the registry dependency with this path crate. It keeps the
//! same bench-authoring surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, throughput,
//! `iter_batched`) and implements a straightforward measurement loop:
//!
//! 1. warm up for ~0.5 s to stabilize frequency and caches;
//! 2. calibrate an iteration count so one sample takes ≳10 ms;
//! 3. collect `sample_size` samples and report min / median / max
//!    per-iteration time, plus element throughput when configured.
//!
//! There is no statistical outlier analysis, HTML report, or saved
//! baseline; results are printed to stdout in a stable, greppable
//! format: `bench: <name> ... time: [<min> <median> <max>]`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time for one measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);
/// Warmup budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(200);

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; the shim re-runs setup per
/// batch regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from one parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to each bench target.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.to_string(), throughput: None, sample_size }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.throughput, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// Timing loop driver passed to the closure of each benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    calibrating: bool,
}

impl Bencher {
    /// Measures `f` repeatedly, timing whole samples of many iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            let t0 = Instant::now();
            black_box(f());
            self.calibrate(t0.elapsed());
            return;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Measures `routine` on inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.calibrating {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.calibrate(t0.elapsed());
            return;
        }
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn calibrate(&mut self, one_iter: Duration) {
        let per_iter = one_iter.max(Duration::from_nanos(1));
        let n = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).max(1);
        self.iters_per_sample = u64::try_from(n).unwrap_or(u64::MAX).min(1_000_000);
    }
}

fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: run single iterations until the warmup budget is
    // spent, deriving the per-sample iteration count.
    let mut b =
        Bencher { iters_per_sample: 1, samples: Vec::new(), sample_size, calibrating: true };
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        if warm_start.elapsed() >= WARMUP_TIME {
            break;
        }
    }

    // Measurement pass.
    b.calibrating = false;
    b.samples.clear();
    f(&mut b);

    if b.samples.is_empty() {
        println!("bench: {name:<40} (no samples collected)");
        return;
    }
    let iters = b.iters_per_sample;
    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let median = per_iter[per_iter.len() / 2];
    let mut line =
        format!("bench: {name:<40} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (median / 1e9);
        line.push_str(&format!("  thrpt: {} {unit}", fmt_rate(rate)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declares a group of bench targets sharing one [`Criterion`]
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        // Must simply complete quickly and not panic.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_with_throughput_and_inputs() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::from_parameter("vec3"), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![0u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter("gzip").to_string(), "gzip");
        assert_eq!(BenchmarkId::new("fit", 1000).to_string(), "fit/1000");
    }
}
