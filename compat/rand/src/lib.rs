//! Offline stand-in for the subset of the `rand` 0.8 API that the udse
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the registry dependency with this path crate (same package
//! name, same import paths). It provides:
//!
//! - [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64, which passes the usual
//!   statistical batteries and is more than adequate for synthetic trace
//!   generation and sampling);
//! - the [`Rng`], [`RngCore`], and [`SeedableRng`] traits with
//!   `gen`, `gen_range`, and `gen_bool`;
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so absolute random sequences are not bit-compatible with
//! runs made against the registry crate. Everything in this repository
//! treats seeds as opaque reproducibility handles, not golden vectors,
//! so only determinism per seed matters — and that is preserved.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable in u64; values at or above
    // it would bias the modulo and are rejected (at most one expected
    // retry even in the worst case).
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let x: f64 = rng.gen();
    /// assert!((0.0..1.0).contains(&x));
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family (avoids low-entropy all-zero states).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`).

    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    impl<T> super::SampleRange<T> for std::ops::RangeInclusive<T>
    where
        T: Copy + TryInto<u64> + TryFrom<u64>,
    {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let lo: u64 = (*self.start()).try_into().ok().expect("non-negative bound");
            let hi: u64 = (*self.end()).try_into().ok().expect("non-negative bound");
            assert!(lo <= hi, "cannot sample empty range");
            let span = hi - lo + 1; // hi < u64::MAX in practice (slice indices)
            let v = lo + super::uniform_below(rng, span);
            T::try_from(v).ok().expect("value fits source type")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_all_levels() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5..5u64);
    }
}
