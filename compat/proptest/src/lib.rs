//! Offline stand-in for the subset of the `proptest` API that the udse
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the registry dependency with this path crate. It implements
//! random-input property testing with the same surface syntax:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` inner attribute;
//! - range strategies (`0u64..375_000`, `-1.0f64..1.0`), tuple
//!   strategies, and [`collection::vec`] with fixed or ranged sizes;
//! - [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure file: a failing case panics immediately with the generated
//! inputs printed, which is enough to reproduce (generation is
//! deterministic per test name). `proptests.proptest-regressions` files
//! are therefore ignored.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test-function configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test fails.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject,
    /// The property failed.
    Fail(String),
}

/// The deterministic generator driving input sampling.
pub type TestRng = StdRng;

/// Creates the RNG for one test function, seeded from its name so every
/// `cargo test` run explores the same sequence of cases.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Size specification for [`collection::vec`]: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` user needs in scope.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! Namespace mirror of upstream's `prelude::prop`.
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let mut inputs = String::new();
                $(inputs.push_str(&format!(
                    "{} = {:?}; ", stringify!($arg), &$arg
                ));)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest: too many prop_assume! rejections ({rejected})"
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            accepted + 1,
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -2.0f64..3.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-2.0..3.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(
            xs in prop::collection::vec(0.0f64..1.0, 3..7),
            fixed in prop::collection::vec(0u64..5, 4),
        ) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn tuples_and_nested_vecs(
            pts in prop::collection::vec((0.1f64..10.0, 1.0f64..200.0), 1..20),
            grid in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 2..5),
        ) {
            for (a, b) in &pts {
                prop_assert!(*a < 10.0 && *b >= 1.0);
            }
            for row in &grid {
                prop_assert_eq!(row.len(), 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
